"""Drift scenarios: workload phase shifts the controller must catch.

A drift scenario is an ordinary open-loop serve run whose request stream
changes character mid-run: each :class:`DriftPhase` remaps the uniform
draws the traffic generator already emits (``op_u`` through the phase's
update ratio, ``key_u`` into a sub-range of the key-popularity table),
so a write-mix shift or hot-key churn costs no new workload code and
stays a pure function of the configuration.

These are exactly the scenarios ROADMAP items 1 and 4 name: no static
:class:`~repro.core.design.DesignSpec` wins every phase — ``nowb`` is
cheapest while the log ring has headroom (no clwb instructions, full
write coalescing), ``clwb`` is cheapest once log wrap starts forcing
dirty lines back — so the adaptive controller, switching at the phase
boundary it *observes* (not one it is told about), beats every static
design on total simulated cycles.  :func:`compare_drift` measures
precisely that claim.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Iterator, Optional, Tuple

from ..core.design import DesignSpec, legal_switch_targets, resolve_design
from ..errors import ConfigError
from ..harness.runner import prepare_workload
from ..sched.loop import AdmissionConfig, EventLoopScheduler
from ..sched.serve import default_serve_config
from ..sched.shard import ShardMachine
from ..sched.traffic import TrafficConfig, open_loop_schedule
from ..sim.config import LoggingConfig, SystemConfig
from ..sim.machine import Machine
from ..txn.runtime import PersistentMemory, ThreadAPI
from ..workloads.rng import ZipfGenerator, thread_rng
from ..workloads.whisper import make_whisper_kernel
from ..workloads.whisper.base import MAX_PARTITIONS
from ..workloads.whisper.ycsb import UPDATE_RATIO, YCSBKernel
from .controller import AdaptiveController
from .table import PolicyTable


@dataclass(frozen=True)
class DriftPhase:
    """One phase of the request stream."""

    requests: int
    update_ratio: float
    """Fraction of requests that are updates (the write mix)."""
    key_lo: float = 0.0
    key_hi: float = 1.0
    """``key_u`` is remapped into ``[key_lo, key_hi)``: a narrow range
    near 0 concentrates on the popular head of the key distribution
    (write coalescing), a range near 1 spreads over the tail (distinct
    lines, wrap pressure)."""

    def validate(self) -> None:
        if self.requests <= 0:
            raise ConfigError("phase requests must be positive")
        if not 0.0 <= self.update_ratio <= 1.0:
            raise ConfigError("update_ratio must be in [0, 1]")
        if not 0.0 <= self.key_lo < self.key_hi <= 1.0:
            raise ConfigError("phase key range needs 0 <= lo < hi <= 1")


def remap_op(op_u: float, update_ratio: float) -> float:
    """Reshape a uniform draw so ``P(op_u' < UPDATE_RATIO) == update_ratio``.

    Piecewise-linear and order-preserving within each half, so the draw
    stays uniform conditioned on the operation chosen.
    """
    if update_ratio <= 0.0:
        return UPDATE_RATIO + op_u * (1.0 - UPDATE_RATIO)
    if update_ratio >= 1.0:
        return op_u * UPDATE_RATIO
    if op_u < update_ratio:
        return op_u * (UPDATE_RATIO / update_ratio)
    return UPDATE_RATIO + (op_u - update_ratio) * (
        (1.0 - UPDATE_RATIO) / (1.0 - update_ratio)
    )


def remap_key(key_u: float, key_lo: float, key_hi: float) -> float:
    """Compress a uniform draw into the phase's key sub-range."""
    return key_lo + key_u * (key_hi - key_lo)


#: The write-back family the drift scenarios (and their statics) range
#: over: hardware undo+redo logging, every write-back discipline.
WRITEBACK_FAMILY = ("hw+undo+redo+nowb", "hw+undo+redo+clwb", "hw+undo+redo+fwb")


def drift_system(threads: int = 2, log_entries: int = 512) -> SystemConfig:
    """The serve-scale system with a log ring small enough to wrap.

    Wrap pressure is the drift signal; the default serve ring (1 Ki
    entries) would take thousands of requests to fill.
    """
    return default_serve_config(
        threads, logging=LoggingConfig(log_entries=log_entries)
    )


@dataclass
class DriftConfig:
    """One drift scenario."""

    workload: str = "ycsb"
    phases: Tuple[DriftPhase, ...] = (
        DriftPhase(256, 0.9, 0.30, 0.65),
        DriftPhase(384, 0.9, 0.65, 1.0),
    )
    """Default drift: a mid-tail update phase whose records fit the log
    ring (``nowb`` free, ``clwb`` pays a write-back per commit on every
    distinct line) into a far-tail update storm that wraps the ring
    (``nowb`` pays inline wrap-force stalls on the first phase's — and
    then its own — still-dirty lines, ``clwb`` clean)."""
    policy: DesignSpec = None
    """The starting design (also the static baseline family's member)."""
    shards: int = 1
    threads: int = 2
    batch_requests: int = 8
    rate: float = 0.02
    arrival: str = "uniform"
    seed: int = 42
    system: Optional[SystemConfig] = None
    admission: AdmissionConfig = field(
        default_factory=lambda: AdmissionConfig(max_queue_depth=1 << 20)
    )
    """Effectively lossless by default: every design must serve the whole
    schedule, so total simulated cycles compares equal completed work
    (a bounded queue would let slow designs shed load and look cheap)."""
    window_txns: int = 4
    drain_checkpoint_cycles: float = 400.0
    """Backlog served after the last arrival still passes controller
    checkpoints every this-many cycles (the drift signal usually peaks
    exactly there — see ``EventLoopScheduler.drain``)."""

    def __post_init__(self) -> None:
        if self.policy is None:
            self.policy = resolve_design(WRITEBACK_FAMILY[0])
        elif not isinstance(self.policy, DesignSpec):
            self.policy = resolve_design(self.policy)

    def validate(self) -> None:
        if not self.phases:
            raise ConfigError("a drift scenario needs at least one phase")
        for phase in self.phases:
            phase.validate()
        if self.shards <= 0 or self.threads <= 0 or self.batch_requests <= 0:
            raise ConfigError("shards, threads, batch_requests must be positive")
        self.admission.validate()

    @property
    def requests(self) -> int:
        return sum(phase.requests for phase in self.phases)

    def traffic(self) -> TrafficConfig:
        return TrafficConfig(
            requests=self.requests,
            rate=self.rate,
            arrival=self.arrival,
            seed=self.seed,
        )

    def phase_dicts(self) -> list:
        return [dataclasses.asdict(phase) for phase in self.phases]


def drift_schedule(config: DriftConfig) -> list:
    """The open-loop schedule with per-phase draw remapping applied."""
    schedule = open_loop_schedule(config.traffic(), config.shards)
    remapped = []
    index = 0
    for phase in config.phases:
        for _ in range(phase.requests):
            request = schedule[index]
            remapped.append(
                dataclasses.replace(
                    request,
                    key_u=remap_key(request.key_u, phase.key_lo, phase.key_hi),
                    op_u=remap_op(request.op_u, phase.update_ratio),
                )
            )
            index += 1
    return remapped


# ----------------------------------------------------------------------
# Closed-loop prefix proxy (the trainer's oracle workload)
# ----------------------------------------------------------------------
class DriftSequenceWorkload(YCSBKernel):
    """A closed-loop *prefix* of a drift scenario.

    The offline optimizer can't grid a phase in isolation: a phase's
    cost depends on the state earlier phases left behind (above all the
    log-ring fill — a wrap storm only exists because the previous phase
    filled the ring).  So the oracle cell for phase *k* plays phases
    ``0..k`` in order and stops; the cell for ``k-1`` issues a
    byte-identical transaction stream up to the phase boundary, and
    differencing the two cells' finalized stats yields phase *k*'s
    **in-context** cost and feature vector, full ring and warm caches
    included.  The harness's ``txns_per_thread`` budget is the whole
    sequence's; it is split across phases by request share.
    """

    name = "ycsb-drift-seq"
    description = "Cumulative drift-phase prefix of the zipfian KV mix."

    def __init__(
        self,
        phases: Tuple[DriftPhase, ...],
        upto: int,
        seed: int = 42,
        value_kind: str = "int",
        keys_per_partition: int = 2048,
    ) -> None:
        super().__init__(seed, value_kind, keys_per_partition)
        self.phases = tuple(phases)
        if not 0 <= upto < len(self.phases):
            raise ConfigError("upto must index one of the phases")
        self.upto = int(upto)

    def phase_budgets(self, num_txns: int) -> list:
        """Per-phase transaction counts for a ``num_txns`` budget."""
        total = sum(phase.requests for phase in self.phases)
        return [
            max(1, round(num_txns * phase.requests / total))
            for phase in self.phases
        ]

    def thread_body(self, api: ThreadAPI, tid: int, num_txns: int) -> Iterator[None]:
        part = tid % MAX_PARTITIONS
        rng = thread_rng(self.seed, tid)
        zipf = ZipfGenerator(self.keys_per_partition)
        budgets = self.phase_budgets(num_txns)
        for index in range(self.upto + 1):
            phase = self.phases[index]
            for txn in range(budgets[index]):
                key_u = remap_key(rng.random(), phase.key_lo, phase.key_hi)
                op_u = remap_op(rng.random(), phase.update_ratio)
                key = zipf.rank(key_u) + 1
                with api.transaction():
                    self._request_ops(api, part, key, op_u < UPDATE_RATIO, txn)
                yield


# ----------------------------------------------------------------------
# Scenario execution
# ----------------------------------------------------------------------
def run_drift(
    config: DriftConfig,
    table: Optional[PolicyTable] = None,
    machine_hook=None,
) -> dict:
    """Run one drift scenario; adaptive when ``table`` is given.

    Returns a JSON-ready report: total simulated cycles (the comparison
    metric), completion counts, deterministic cost counters, and — in
    adaptive mode — the controller's full decision log.
    """
    config.validate()
    if table is not None and table.start is not None:
        config = dataclasses.replace(config, policy=table.start)
    workload = make_whisper_kernel(config.workload, seed=config.seed)
    if not workload.request_shaped:
        raise ConfigError(
            f"workload {config.workload!r} is not request-shaped; drift "
            "scenarios run through the open-loop serve layer"
        )
    system = config.system or drift_system(config.threads)
    prepared = prepare_workload(workload, system)
    workload = prepared.workload
    workload.reset_run_state()

    shards = []
    for shard_id in range(config.shards):
        machine = Machine(system, config.policy)
        if machine_hook is not None:
            machine_hook(shard_id, machine)
        pm = PersistentMemory(machine)
        prepared.restore_into(machine)
        pm.heap.restore(prepared.heap_state)
        workload.attach(pm)
        shard = ShardMachine(
            machine,
            pm,
            workload,
            threads=config.threads,
            shard_id=shard_id,
            batch_requests=config.batch_requests,
        )
        shard.start_serve()
        shards.append(shard)

    controller = None
    checkpoint = None
    if table is not None:
        controller = AdaptiveController(table, window_txns=config.window_txns)
        checkpoint = controller.checkpoint_for(shards)
    scheduler = EventLoopScheduler(
        shards,
        admission=config.admission,
        checkpoint=checkpoint,
        drain_checkpoint_cycles=(
            config.drain_checkpoint_cycles if checkpoint is not None else None
        ),
    )
    scheduler.run_open_loop(drift_schedule(config))

    total_cycles = 0.0
    completed = 0
    counters = {
        "transactions_committed": 0,
        "instructions": 0,
        "log_records": 0,
        "log_wrap_forced_writebacks": 0,
        "clwb_count": 0,
        "fwb_writebacks": 0,
        "nvram_write_bytes": 0,
        "design_switches": 0,
    }
    final_designs = []
    for shard in shards:
        stats = shard.machine.finalize()
        total_cycles = max(total_cycles, stats.cycles)
        completed += len(shard.completed_requests())
        for name in counters:
            counters[name] += getattr(stats, name)
        final_designs.append(shard.machine.policy.mechanism_string())

    report = {
        "workload": config.workload,
        "phases": config.phase_dicts(),
        "start_design": config.policy.mechanism_string(),
        "adaptive": table is not None,
        "offered": config.requests,
        "admitted": len(scheduler.admitted),
        "rejected": len(scheduler.rejected),
        "completed": completed,
        "total_cycles": total_cycles,
        "final_designs": final_designs,
        "counters": counters,
    }
    if controller is not None:
        report["adaptation"] = controller.summary()
    return report


def compare_drift(
    config: DriftConfig,
    table: Optional[PolicyTable] = None,
    statics=None,
) -> dict:
    """Adaptive run vs. every static design the controller could pick.

    ``statics`` defaults to the scenario's legal switch family (the
    start design plus every spec the table names, closed under
    legality).  The adaptive claim is ``adaptive_wins``: strictly fewer
    total simulated cycles than *each* static run.
    """
    from .table import default_policy_table

    if table is None:
        table = default_policy_table()
    if statics is None:
        family = [resolve_design(name) for name in WRITEBACK_FAMILY]
        for spec in table.specs():
            if spec not in family:
                family.append(spec)
        statics = legal_switch_targets(config.policy, family)
    adaptive = run_drift(config, table=table)
    static_reports = {}
    for spec in statics:
        static_config = dataclasses.replace(config, policy=spec)
        static_reports[spec.mechanism_string()] = run_drift(static_config)

    best_static = min(
        static_reports.items(), key=lambda item: (item[1]["total_cycles"], item[0])
    )
    return {
        "adaptive": adaptive,
        "static": static_reports,
        "best_static": best_static[0],
        "best_static_cycles": best_static[1]["total_cycles"],
        "adaptive_cycles": adaptive["total_cycles"],
        "adaptive_wins": adaptive["total_cycles"] < best_static[1]["total_cycles"],
        "margin": (
            (best_static[1]["total_cycles"] - adaptive["total_cycles"])
            / best_static[1]["total_cycles"]
            if best_static[1]["total_cycles"]
            else 0.0
        ),
    }
