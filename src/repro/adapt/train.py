"""``repro adapt train``: the offline policy optimizer.

The trainer treats the existing sweep engine as an *evaluation oracle*:
training units are gridded against the candidate design family through
:func:`~repro.harness.sweep.run_micro_sweep` — cached, parallel, trace-
compiled — and the cheapest design per unit wins.  Units come in two
shapes:

* **drift phases** — each phase is evaluated *in context* via the
  cumulative-prefix trick (:class:`~repro.adapt.drift.DriftSequenceWorkload`):
  the cell for phases ``0..k`` and the cell for ``0..k-1`` share a
  byte-identical stream up to the boundary, so differencing their
  finalized stats isolates phase *k*'s cost and feature vector with the
  log-ring fill and cache state earlier phases left behind;
* **benchmarks** — each microbenchmark is one unit, evaluated whole
  (the CI smoke grid trains this way).

Winners are then placed on a one-dimensional feature staircase: the
trainer picks the feature that best separates them (fewest bands,
widest relative margins), puts a ``<feature>_min`` threshold at each
band midpoint, and emits the versioned ``repro-adapt/v1`` table the
runtime controller consumes.

Everything is deterministic — cells are bit-identical to serial runs,
ties break on canonical design order — so training twice writes
byte-identical tables (the CI ``adapt-smoke`` job compares digests).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional, Sequence, Tuple

from ..core.design import DesignSpec, resolve_design
from ..errors import ConfigError
from ..sim.config import SystemConfig
from .drift import DriftPhase, DriftSequenceWorkload, WRITEBACK_FAMILY, drift_system
from .features import WindowFeatures, feature_probe, run_features, window_features
from .table import PolicyRule, PolicyTable, make_rule


@dataclass(frozen=True)
class TrainingUnit:
    """One evaluated training unit: its features and its winner."""

    label: str
    features: WindowFeatures
    best: DesignSpec
    cycles: Tuple[Tuple[str, float], ...]
    """Per-candidate cost in cycles (phase units: in-context delta)."""

    def to_dict(self) -> dict:
        return {
            "label": self.label,
            "features": self.features.as_dict(),
            "best": self.best.mechanism_string(),
            "cycles": dict(self.cycles),
        }


#: Feature preference when several separate the winners equally well
#: (with two units *every* differing feature separates them).  Wrap
#: pressure leads: it is exactly zero in any steady state and strictly
#: positive under ring churn, so a threshold on it cannot flip-flop the
#: live controller the way an always-nonzero rate feature can.
_RULE_PREFERENCE = ("wrap_pressure", "txn_size", "miss_rate", "write_intensity")


def _band_rules(
    units: Sequence[TrainingUnit],
) -> Tuple[Tuple[PolicyRule, ...], Optional[DesignSpec], DesignSpec]:
    """Threshold rules separating the units' winners on one feature.

    Scans features (in :data:`_RULE_PREFERENCE` order) for the one that
    sorts the units into the fewest contiguous same-winner bands (margin
    between bands breaks ties), then emits a descending staircase of
    ``<feature>_min`` rules — one per band boundary.  Returns
    ``(rules, default, start)``: the default is *hold* (None) so the
    live controller escalates on signal without oscillating back, and
    ``start`` — the lowest band's winner — is the recommended initial
    design.
    """
    winners = []
    for unit in units:
        if unit.best not in winners:
            winners.append(unit.best)
    if len(winners) == 1:
        # One winner everywhere: no thresholds, just start (and default
        # to it, so an adaptive run seeded elsewhere converges to it).
        return (), winners[0], winners[0]

    best_choice = None
    for name in _RULE_PREFERENCE:
        ordered = sorted(
            units, key=lambda unit: (getattr(unit.features, name), unit.label)
        )
        values = [getattr(unit.features, name) for unit in ordered]
        span = values[-1] - values[0]
        if span <= 0.0:
            continue
        bands = 1
        margin = None
        for prev, cur in zip(ordered, ordered[1:]):
            if cur.best != prev.best:
                bands += 1
                gap = (
                    getattr(cur.features, name) - getattr(prev.features, name)
                ) / span
                margin = gap if margin is None else min(margin, gap)
        if margin is None:
            continue
        score = (bands, -margin)
        if best_choice is None or score < best_choice[0]:
            best_choice = (score, name, ordered)
    if best_choice is None:
        raise ConfigError(
            "training units are not separable: winners differ but every "
            "feature is constant across units"
        )

    _score, feature, ordered = best_choice
    rules = []
    for prev, cur in zip(ordered, ordered[1:]):
        if cur.best == prev.best:
            continue
        low = getattr(prev.features, feature)
        high = getattr(cur.features, feature)
        threshold = (low + high) / 2.0
        rules.append(make_rule({f"{feature}_min": threshold}, cur.best))
    # First match wins: highest threshold first.
    rules.reverse()
    return tuple(rules), None, ordered[0].best


def train_policy_table(
    phases: Optional[Sequence[DriftPhase]] = None,
    benchmarks: Optional[Sequence[str]] = None,
    specs: Iterable = WRITEBACK_FAMILY,
    threads: int = 2,
    txns_per_thread: int = 160,
    system: Optional[SystemConfig] = None,
    seed: int = 42,
    value_kind: str = "int",
    keys_per_partition: int = 2048,
    probe_spec=None,
    cache=None,
    jobs: int = 1,
) -> PolicyTable:
    """Grid the candidate designs per training unit; emit a policy table.

    Exactly one of ``phases`` or ``benchmarks`` selects the training
    set.  ``probe_spec`` (default: the first candidate) is the design
    whose runs supply each unit's feature vector — the features a rule
    thresholds on must come from one consistent observation design,
    since the live controller observes under whatever design is
    currently active.
    """
    from ..harness.sweep import run_micro_sweep

    if (phases is None) == (benchmarks is None):
        raise ConfigError("train on exactly one of phases= or benchmarks=")
    candidates = [resolve_design(spec) for spec in specs]
    if len(candidates) < 2:
        raise ConfigError("training needs at least two candidate designs")
    probe = resolve_design(probe_spec) if probe_spec is not None else candidates[0]
    if probe not in candidates:
        candidates = [probe] + candidates
    if system is None:
        system = drift_system(threads)

    if phases is not None:
        phases = tuple(phases)
        for phase in phases:
            phase.validate()
        names = tuple(f"prefix{i}" for i in range(len(phases)))

        def factory(name: str):
            return DriftSequenceWorkload(
                phases,
                upto=int(name[len("prefix"):]),
                seed=seed,
                value_kind=value_kind,
                keys_per_partition=keys_per_partition,
            )

        workload_factory = factory
        workload_name = "ycsb-drift"
    else:
        names = tuple(benchmarks)
        if not names:
            raise ConfigError("benchmarks= must name at least one benchmark")
        workload_factory = None
        workload_name = "micro:" + ",".join(names)

    result = run_micro_sweep(
        benchmarks=names,
        threads=(threads,),
        policies=candidates,
        txns_per_thread=txns_per_thread,
        system=system,
        seed=seed,
        value_kind=value_kind,
        workload_factory=workload_factory,
        jobs=jobs,
        cache=cache,
    )

    units = []
    for index, name in enumerate(names):
        if phases is not None and index > 0:
            # In-context phase cost/features: prefix_k minus prefix_{k-1}.
            previous = names[index - 1]
            cycles = tuple(
                (
                    spec.mechanism_string(),
                    result.stats(name, threads, spec).cycles
                    - result.stats(previous, threads, spec).cycles,
                )
                for spec in candidates
            )
            features = window_features(
                feature_probe(result.stats(previous, threads, probe)),
                feature_probe(result.stats(name, threads, probe)),
            )
        else:
            cycles = tuple(
                (spec.mechanism_string(), result.stats(name, threads, spec).cycles)
                for spec in candidates
            )
            features = run_features(result.stats(name, threads, probe))
        by_spec = dict(cycles)
        best = min(
            candidates,
            key=lambda spec: (by_spec[spec.mechanism_string()], spec.mechanism_string()),
        )
        units.append(
            TrainingUnit(
                label=name if phases is None else f"phase{index}",
                features=features,
                best=best,
                cycles=cycles,
            )
        )

    rules, default, start = _band_rules(units)
    provenance = {
        "mode": "phases" if phases is not None else "benchmarks",
        "threads": threads,
        "txns_per_thread": txns_per_thread,
        "seed": seed,
        "probe_spec": probe.mechanism_string(),
        "candidates": [spec.mechanism_string() for spec in candidates],
        "units": [unit.to_dict() for unit in units],
    }
    if phases is not None:
        provenance["phases"] = [
            {
                "requests": phase.requests,
                "update_ratio": phase.update_ratio,
                "key_lo": phase.key_lo,
                "key_hi": phase.key_hi,
            }
            for phase in phases
        ]
    return PolicyTable(
        rules=rules,
        default=default,
        start=start,
        workload=workload_name,
        trained_on=provenance,
    )
