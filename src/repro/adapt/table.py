"""The versioned feature→spec decision table (``repro-adapt/v1``).

A policy table is an *ordered* rule list over the feature vector of
:mod:`repro.adapt.features`: the first rule whose conditions all hold
names the target :class:`~repro.core.design.DesignSpec`; when nothing
matches the table either holds the current design (``default: "hold"``,
the hysteresis-friendly choice) or names a fallback spec.  Conditions
are closed half-lines — ``<feature>_min`` / ``<feature>_max`` keys — so
a trained table serializes to plain JSON and round-trips exactly:

.. code-block:: json

    {
      "schema": "repro-adapt/v1",
      "workload": "ycsb-drift",
      "rules": [
        {"when": {"wrap_pressure_min": 0.5}, "spec": "hw+undo+redo+clwb"}
      ],
      "default": "hold"
    }

Tables are written by :mod:`repro.adapt.train` and consumed by
:class:`repro.adapt.controller.AdaptiveController` (``repro serve
--adaptive`` / ``repro adapt run``).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Optional, Tuple

from ..core.design import DesignSpec, resolve_design
from ..errors import ConfigError
from .features import FEATURE_NAMES, WindowFeatures

SCHEMA = "repro-adapt/v1"

#: Sentinel default: keep the currently active design when no rule matches.
HOLD = "hold"


@dataclass(frozen=True)
class PolicyRule:
    """One ordered rule: conditions over features, and a target spec."""

    when: Tuple[Tuple[str, float], ...]
    """Sorted ``(condition, threshold)`` pairs; a condition is
    ``<feature>_min`` (feature >= threshold) or ``<feature>_max``
    (feature <= threshold)."""
    spec: DesignSpec

    def matches(self, features: WindowFeatures) -> bool:
        """True when every condition holds for ``features``."""
        for condition, threshold in self.when:
            if condition.endswith("_min"):
                if getattr(features, condition[:-4]) < threshold:
                    return False
            else:
                if getattr(features, condition[:-4]) > threshold:
                    return False
        return True

    def to_dict(self) -> dict:
        return {"when": dict(self.when), "spec": self.spec.mechanism_string()}


def _check_condition(condition: str) -> None:
    if not (condition.endswith("_min") or condition.endswith("_max")):
        raise ConfigError(
            f"policy-rule condition {condition!r} must end in _min or _max"
        )
    if condition[:-4] not in FEATURE_NAMES:
        raise ConfigError(
            f"policy-rule condition {condition!r} names no feature "
            f"(features: {', '.join(FEATURE_NAMES)})"
        )


def make_rule(when: dict, spec) -> PolicyRule:
    """Build a rule from a plain conditions mapping and a design name."""
    for condition in when:
        _check_condition(condition)
    return PolicyRule(
        when=tuple(sorted((str(k), float(v)) for k, v in when.items())),
        spec=resolve_design(spec),
    )


@dataclass
class PolicyTable:
    """An ordered feature→spec lookup table."""

    rules: Tuple[PolicyRule, ...] = ()
    default: Optional[DesignSpec] = None
    """Spec when no rule matches; None means hold the current design."""
    start: Optional[DesignSpec] = None
    """Recommended initial design (the trainer's cheapest steady-state
    band); consumers seed adaptive runs with it when the caller has no
    opinion."""
    workload: str = ""
    trained_on: dict = field(default_factory=dict)
    """Provenance (phases, specs gridded, oracle settings) — purely
    informational, round-tripped through JSON untouched."""

    def decide(self, features: WindowFeatures, current: DesignSpec) -> DesignSpec:
        """The target design for one feature window."""
        for rule in self.rules:
            if rule.matches(features):
                return rule.spec
        return self.default if self.default is not None else current

    def specs(self) -> list:
        """Every design the table can name, rules first, in table order."""
        out = []
        for rule in self.rules:
            if rule.spec not in out:
                out.append(rule.spec)
        if self.default is not None and self.default not in out:
            out.append(self.default)
        if self.start is not None and self.start not in out:
            out.append(self.start)
        return out

    # ------------------------------------------------------------------
    # JSON round-trip
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        out = {
            "schema": SCHEMA,
            "workload": self.workload,
            "trained_on": self.trained_on,
            "rules": [rule.to_dict() for rule in self.rules],
            "default": (
                HOLD if self.default is None else self.default.mechanism_string()
            ),
        }
        if self.start is not None:
            out["start"] = self.start.mechanism_string()
        return out

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2, sort_keys=True) + "\n"

    @classmethod
    def from_dict(cls, data: dict) -> "PolicyTable":
        schema = data.get("schema")
        if schema != SCHEMA:
            raise ConfigError(
                f"policy table schema {schema!r} is not {SCHEMA!r}; "
                "re-train with 'repro adapt train'"
            )
        default = data.get("default", HOLD)
        start = data.get("start")
        return cls(
            rules=tuple(
                make_rule(entry["when"], entry["spec"]) for entry in data["rules"]
            ),
            default=None if default == HOLD else resolve_design(default),
            start=None if start is None else resolve_design(start),
            workload=data.get("workload", ""),
            trained_on=data.get("trained_on", {}),
        )

    @classmethod
    def from_json(cls, text: str) -> "PolicyTable":
        return cls.from_dict(json.loads(text))

    def save(self, path) -> None:
        with open(path, "w") as out:
            out.write(self.to_json())

    @classmethod
    def load(cls, path) -> "PolicyTable":
        with open(path) as handle:
            return cls.from_json(handle.read())


def default_policy_table() -> PolicyTable:
    """The built-in table for the ``hw+undo+redo`` write-back family.

    Log-wrap pressure is the one feature that directly prices the
    ``nowb`` discipline (forced write-backs stall the log append path):
    a window with >= 1 forced write-back per two transactions switches
    to ``clwb``; otherwise the current design holds, which gives the
    cheap ``nowb`` discipline to quiet phases and avoids flip-flopping
    once ``clwb`` has cleaned the wrap pressure away.
    """
    return PolicyTable(
        rules=(make_rule({"wrap_pressure_min": 0.5}, "hw+undo+redo+clwb"),),
        default=None,
        workload="builtin",
    )
