"""repro — reproduction of *Steal but No Force: Efficient Hardware
Undo+Redo Logging for Persistent Memory Systems* (HPCA 2018).

Public API quickstart::

    from repro import DESIGNS, Machine, PersistentMemory, SystemConfig

    machine = Machine(SystemConfig(), DESIGNS.resolve("fwb"))
    pm = PersistentMemory(machine)
    api = pm.api(core_id=0)
    addr = pm.heap.alloc(8)
    with api.transaction():
        api.write(addr, (42).to_bytes(8, "little"))
    stats = machine.finalize()

The designs are compositions of orthogonal mechanisms
(:class:`~repro.core.design.DesignSpec`): ``DESIGNS.resolve`` accepts
the paper's eight names (``fwb``, ``hwl``, …) or custom mechanism
strings like ``"hw+undo+clwb"``.  The legacy :class:`Policy` enum
remains as a deprecated alias.

Subpackages:

* :mod:`repro.sim` — the timing/functional simulator substrate;
* :mod:`repro.core` — the paper's contribution (HWL, FWB, logs, recovery);
* :mod:`repro.txn` — the transaction runtime and persistent heap;
* :mod:`repro.workloads` — the evaluated microbenchmarks and WHISPER-like
  kernels;
* :mod:`repro.harness` — experiment definitions reproducing every table
  and figure.
"""

from .core.design import CANONICAL_DESIGNS, DESIGNS, DesignSpec, parse_design, resolve_design
from .core.policy import Policy
from .core.recovery import RecoveryManager, RecoveryReport
from .sim.config import SystemConfig
from .sim.machine import Machine
from .sim.stats import MachineStats
from .txn.runtime import PersistentMemory, ThreadAPI

__version__ = "1.1.0"

__all__ = [
    "Policy",
    "DesignSpec",
    "DESIGNS",
    "CANONICAL_DESIGNS",
    "parse_design",
    "resolve_design",
    "SystemConfig",
    "Machine",
    "MachineStats",
    "PersistentMemory",
    "ThreadAPI",
    "RecoveryManager",
    "RecoveryReport",
    "__version__",
]
