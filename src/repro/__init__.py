"""repro — reproduction of *Steal but No Force: Efficient Hardware
Undo+Redo Logging for Persistent Memory Systems* (HPCA 2018).

Public API quickstart::

    from repro import Machine, Policy, PersistentMemory, SystemConfig

    machine = Machine(SystemConfig(), Policy.FWB)
    pm = PersistentMemory(machine)
    api = pm.api(core_id=0)
    addr = pm.heap.alloc(8)
    with api.transaction():
        api.write(addr, (42).to_bytes(8, "little"))
    stats = machine.finalize()

Subpackages:

* :mod:`repro.sim` — the timing/functional simulator substrate;
* :mod:`repro.core` — the paper's contribution (HWL, FWB, logs, recovery);
* :mod:`repro.txn` — the transaction runtime and persistent heap;
* :mod:`repro.workloads` — the evaluated microbenchmarks and WHISPER-like
  kernels;
* :mod:`repro.harness` — experiment definitions reproducing every table
  and figure.
"""

from .core.policy import Policy
from .core.recovery import RecoveryManager, RecoveryReport
from .sim.config import SystemConfig
from .sim.machine import Machine
from .sim.stats import MachineStats
from .txn.runtime import PersistentMemory, ThreadAPI

__version__ = "1.0.0"

__all__ = [
    "Policy",
    "SystemConfig",
    "Machine",
    "MachineStats",
    "PersistentMemory",
    "ThreadAPI",
    "RecoveryManager",
    "RecoveryReport",
    "__version__",
]
