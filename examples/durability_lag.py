#!/usr/bin/env python3
"""Visualize "steal but no force": commit latency vs durability lag.

Under the full design a transaction commits the instant its log records
are issued ("free ride"), while durability arrives asynchronously when
the commit record drains to NVRAM.  Software clwb designs pay that wait
*inside* the transaction.  This example traces both and prints the
distribution of the commit-to-durable gap per design.

Run:  python examples/durability_lag.py
"""

from __future__ import annotations

from repro import Machine, PersistentMemory, Policy, SystemConfig
from repro.sim.config import LoggingConfig, NVDimmConfig
from repro.sim.trace import Tracer


def run(policy: Policy):
    config = SystemConfig(
        num_cores=1,
        nvram=NVDimmConfig(size_bytes=8 * 1024 * 1024),
        logging=LoggingConfig(log_entries=2048),
    )
    machine = Machine(config, policy)
    machine.tracer = Tracer()
    pm = PersistentMemory(machine)
    api = pm.api(0)
    slots = [pm.heap.alloc(8) for _ in range(64)]
    for value in range(200):
        with api.transaction():
            api.write(slots[value % 64], value.to_bytes(8, "little"))
            api.compute(20)
    stats = machine.finalize()
    lags = machine.tracer.commit_lags()
    return stats, lags


def main() -> None:
    header = (
        f"{'design':12s} {'cycles/txn':>10s} {'avg commit->durable':>19s} "
        f"{'max':>8s} {'fences in txn':>13s}"
    )
    print(header)
    print("-" * len(header))
    for policy in (Policy.FWB, Policy.HWL, Policy.UNDO_CLWB, Policy.REDO_CLWB):
        stats, lags = run(policy)
        avg = sum(lags) / len(lags) if lags else 0.0
        peak = max(lags) if lags else 0.0
        print(
            f"{policy.value:12s} {stats.cycles / 200:10.0f} "
            f"{avg:16.0f} cyc {peak:8.0f} {stats.fence_stall_cycles:13.0f}"
        )
    print(
        "\nfwb commits instantly and lets durability trail behind (large lag,\n"
        "zero fence stalls); the software designs buy a small lag by stalling\n"
        "inside every transaction — the exact trade the paper's title names."
    )


if __name__ == "__main__":
    main()
