#!/usr/bin/env python3
"""Quickstart: persistent transactions under hardware undo+redo logging.

Builds a machine with the paper's full design (``fwb`` — Hardware Logging
plus cache Force Write-Back), runs a few persistent transactions through
the public API, then crashes the machine at a random instant and recovers
the NVRAM image from the circular log.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

import random

from repro import Machine, PersistentMemory, Policy, RecoveryManager, SystemConfig
from repro.sim.config import LoggingConfig, NVDimmConfig


def main() -> None:
    # A modest machine: Table II latencies, 8 MB NVRAM, 1K-entry log.
    config = SystemConfig(
        num_cores=2,
        nvram=NVDimmConfig(size_bytes=8 * 1024 * 1024),
        logging=LoggingConfig(log_entries=1024),
    )
    machine = Machine(config, Policy.FWB)
    pm = PersistentMemory(machine)
    api = pm.api(core_id=0)

    # A tiny persistent "account table".
    accounts = [pm.heap.alloc(8) for _ in range(4)]
    for addr in accounts:
        pm.setup_write(addr, (100).to_bytes(8, "little"))

    # Transfer money between accounts, transactionally.
    rng = random.Random(1)
    for _ in range(50):
        src, dst = rng.sample(range(4), 2)
        with api.transaction():
            balance_src = int.from_bytes(api.read(accounts[src], 8), "little")
            balance_dst = int.from_bytes(api.read(accounts[dst], 8), "little")
            amount = rng.randint(1, 10)
            api.write(accounts[src], (balance_src - amount).to_bytes(8, "little"))
            api.write(accounts[dst], (balance_dst + amount).to_bytes(8, "little"))
            api.compute(25)  # the surrounding application work

    stats = machine.finalize()
    print("=== run ===")
    print(f"transactions committed : {stats.transactions_committed}")
    print(f"cycles                 : {stats.cycles:,.0f}")
    print(f"IPC                    : {stats.ipc:.3f}")
    print(f"log records written    : {stats.log_records}")
    print(f"NVRAM bytes written    : {stats.nvram_write_bytes:,}")
    print(f"fence stalls           : {stats.fence_stall_cycles:.0f} cycles "
          f"(zero: commits ride for free)")

    # Crash at a random instant and recover.  (The window extends past
    # the last core cycle: posted log/data writes are still draining.)
    crash_time = rng.uniform(0.4, 1.3) * stats.cycles
    machine.crash(at_time=crash_time)
    report = RecoveryManager(machine.nvram, machine.log).recover()
    print("\n=== crash & recovery ===")
    print(f"crashed at cycle       : {crash_time:,.0f}")
    print(f"log window replayed    : {report.window_entries} records")
    print(f"committed transactions : {report.committed_instances} (redone)")
    print(f"uncommitted            : {report.uncommitted_instances} (undone)")

    # The invariant the whole design exists for: total money conserved.
    total = sum(
        int.from_bytes(machine.nvram.peek(addr, 8), "little") for addr in accounts
    )
    print(f"sum of balances        : {total} (expected 400)")
    assert total == 400, "atomicity violated!"
    print("crash consistency holds.")


if __name__ == "__main__":
    main()
