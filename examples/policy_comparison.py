#!/usr/bin/env python3
"""Compare all eight persistence designs on one workload.

Reproduces the core of the paper's evaluation story on the hash
microbenchmark: software logging pays in instructions and fences,
hardware undo+redo logging (hwl) removes the instructions, and the cache
force-write-back mechanism (fwb) removes the forced write-backs too.

Run:  python examples/policy_comparison.py [benchmark] [threads]
      benchmark in {hash, rbtree, sps, btree, ssca2}, default hash
"""

from __future__ import annotations

import sys

from repro.core.policy import Policy
from repro.harness.runner import RunConfig, prepare_workload, run_workload
from repro.workloads import make_microbenchmark


def main() -> None:
    benchmark = sys.argv[1] if len(sys.argv) > 1 else "hash"
    threads = int(sys.argv[2]) if len(sys.argv) > 2 else 1
    workload = make_microbenchmark(benchmark)
    print(f"preparing {benchmark} ({workload.description})")
    prepared = prepare_workload(workload)

    rows = {}
    for policy in Policy:
        outcome = run_workload(
            workload,
            RunConfig(policy=policy, threads=threads, txns_per_thread=300),
            prepared=prepared,
        )
        rows[policy] = outcome.stats

    base = rows[Policy.UNSAFE_BASE]
    header = (
        f"{'design':12s} {'throughput':>11s} {'vs unsafe':>9s} {'IPC':>6s} "
        f"{'instrs':>8s} {'NVRAM wr KB':>11s} {'energy uJ':>10s} {'fences':>8s}"
    )
    print()
    print(header)
    print("-" * len(header))
    for policy, stats in rows.items():
        print(
            f"{policy.value:12s} {stats.throughput:11.1f} "
            f"{stats.throughput / base.throughput:8.2f}x {stats.ipc:6.3f} "
            f"{stats.instructions:8d} {stats.nvram_write_bytes / 1024:11.1f} "
            f"{stats.memory_dynamic_energy_pj / 1e6:10.2f} "
            f"{stats.fence_stall_cycles:8.0f}"
        )

    best_sw = max(
        rows[Policy.REDO_CLWB].throughput, rows[Policy.UNDO_CLWB].throughput
    )
    print(
        f"\nfwb over best software-clwb: "
        f"{rows[Policy.FWB].throughput / best_sw:.2f}x "
        "(paper: 1.86x at 1 thread, 1.75x at 8)"
    )


if __name__ == "__main__":
    main()
