#!/usr/bin/env python3
"""Tour of the WHISPER-like application kernels (Figure 10 workloads).

Runs each kernel under non-pers, the better software baseline, and fwb,
showing how workload character (write intensity, transaction size, skew)
drives the gains — tpcc and ycsb benefit the most, vacation the least.

Run:  python examples/whisper_tour.py
"""

from __future__ import annotations

from repro.core.policy import Policy
from repro.harness.runner import RunConfig, prepare_workload, run_workload
from repro.workloads.whisper import WHISPER_KERNELS, make_whisper_kernel


def main() -> None:
    header = (
        f"{'kernel':10s} {'records/txn':>11s} {'fwb thpt':>9s} "
        f"{'vs best sw':>10s} {'vs non-pers':>11s} {'energy vs sw':>12s}"
    )
    print(header)
    print("-" * len(header))
    for name in sorted(WHISPER_KERNELS):
        kernel = make_whisper_kernel(name)
        prepared = prepare_workload(kernel)
        stats = {}
        for policy in (Policy.NON_PERS, Policy.REDO_CLWB, Policy.UNDO_CLWB, Policy.FWB):
            outcome = run_workload(
                kernel,
                RunConfig(policy=policy, threads=1, txns_per_thread=120),
                prepared=prepared,
            )
            stats[policy] = outcome.stats
        fwb = stats[Policy.FWB]
        best_sw = max(
            stats[Policy.REDO_CLWB], stats[Policy.UNDO_CLWB],
            key=lambda s: s.throughput,
        )
        records_per_txn = fwb.log_records / max(1, fwb.transactions_committed)
        print(
            f"{name:10s} {records_per_txn:11.1f} {fwb.throughput:9.1f} "
            f"{fwb.throughput / best_sw.throughput:9.2f}x "
            f"{fwb.throughput / stats[Policy.NON_PERS].throughput:10.2f}x "
            f"{best_sw.memory_dynamic_energy_pj / fwb.memory_dynamic_energy_pj:11.2f}x"
        )
    print("\nSkewed, update-heavy kernels (ycsb, echo, redis) gain the most "
          "throughput and ycsb the most energy; the read-heavy (vacation) and "
          "compute-heavy (ctree, tpcc's 5-15-line transactions) kernels gain "
          "the least — Figure 10's story.")


if __name__ == "__main__":
    main()
