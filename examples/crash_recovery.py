#!/usr/bin/env python3
"""Crash-consistency torture demo: steal but no force, visibly.

Runs a key-value workload under the full design, crashes at many random
instants, and verifies after every recovery that the NVRAM image equals
the committed prefix — then runs the same experiment under
``unsafe-base`` to show why software logging without forced write-backs
earns its name.

Run:  python examples/crash_recovery.py
"""

from __future__ import annotations

import random

from repro import Machine, PersistentMemory, Policy, RecoveryManager, SystemConfig
from repro.sim.config import LoggingConfig, NVDimmConfig


def trial(policy: Policy, seed: int) -> int:
    """One run + crash + recovery; returns number of corrupted slots."""
    rng = random.Random(seed)
    config = SystemConfig(
        num_cores=1,
        nvram=NVDimmConfig(size_bytes=8 * 1024 * 1024),
        logging=LoggingConfig(log_entries=128),  # small: wraps constantly
    )
    machine = Machine(config, policy)
    pm = PersistentMemory(machine)
    api = pm.api(0)
    slots = [pm.heap.alloc(8) for _ in range(16)]
    for addr in slots:
        pm.setup_write(addr, (0).to_bytes(8, "little"))

    for value in range(1, 81):
        with api.transaction():
            addr = slots[rng.randrange(16)]
            api.write(addr, value.to_bytes(8, "little"))
            api.compute(12)

    crash_time = rng.uniform(0, machine.core_time(0))
    machine.crash(at_time=crash_time)
    RecoveryManager(machine.nvram, machine.log).recover()

    expected = pm.golden.expected_at(crash_time)
    corrupted = 0
    for addr in slots:
        want = expected.get(addr, (0).to_bytes(8, "little"))
        if machine.nvram.peek(addr, 8) != want:
            corrupted += 1
    return corrupted


def main() -> None:
    trials = 40
    print(f"{trials} random-crash trials per design "
          "(128-entry log, wraps many times per run)\n")
    for policy in (Policy.FWB, Policy.HWL, Policy.UNDO_CLWB, Policy.REDO_CLWB,
                   Policy.UNSAFE_BASE):
        failures = sum(1 for seed in range(trials) if trial(policy, seed) > 0)
        verdict = "consistent" if failures == 0 else f"{failures} CORRUPTED runs"
        guarantee = "guaranteed" if policy.persistence_guaranteed else "no guarantee"
        print(f"{policy.value:12s} ({guarantee:12s}): {verdict}")
    print("\nThe guaranteed designs survive every crash point; unsafe-base "
          "does not — which is exactly the paper's Figure 2 argument.")


if __name__ == "__main__":
    main()
