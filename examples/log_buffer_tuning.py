#!/usr/bin/env python3
"""Tune the volatile log buffer (the paper's Figure 11(a) study).

Sweeps the log-buffer depth and reports throughput plus the persistence
bound: a record must reach the NVRAM bus before its cached store can
traverse the hierarchy, which caps the buffer at L1+LLC latency (15
entries for the Table II machine).

Run:  python examples/log_buffer_tuning.py
"""

from __future__ import annotations

from repro.core.fwb import required_scan_interval
from repro.harness.experiments import figure11a_log_buffer, figure11b_fwb_frequency
from repro.harness.runner import default_experiment_config


def main() -> None:
    config = default_experiment_config()
    bound = config.max_persistent_log_buffer_entries()
    print(f"persistence bound for this machine: {bound} entries "
          f"(= {config.l1.latency_cycles(config.core.clock_ghz)}-cycle L1 "
          f"+ {config.llc.latency_cycles(config.core.clock_ghz)}-cycle LLC)\n")

    result = figure11a_log_buffer(txns_per_thread=250)
    print(result.rendered)
    print("\nBeyond 64 entries the NVRAM write bandwidth is the wall; the "
          "128/256 points assume infinite bandwidth, as in the paper.\n")

    freq = figure11b_fwb_frequency()
    print(freq.rendered)
    interval = required_scan_interval(config.scaled())
    print(f"\nconfigured FWB scan interval for the experiment machine: "
          f"{interval:,.0f} cycles")


if __name__ == "__main__":
    main()
