#!/usr/bin/env python
"""DEPRECATED shim — the benchmarks moved into the package.

This script used to time the sweep engine ad hoc and write
``BENCH_sweep.json``.  That role is now served by the ``repro.bench``
subsystem, which covers the sweep engine *and* the other hot paths
(cache probes, log-buffer drain, recovery replay, sweep-cache hits,
ablation fan-out), reports deterministic cost counters alongside
wall-clock, and gates CI against committed ``BENCH_*.json`` baselines::

    PYTHONPATH=src python -m repro bench run --quick
    PYTHONPATH=src python -m repro bench compare --quick
    PYTHONPATH=src python -m repro bench update --quick

This shim forwards to ``repro bench run`` so old invocations keep
producing numbers.  The legacy flags map loosely: ``--medium`` selects
the full matrices (drops ``--quick``), ``--out`` is passed through, and
``--jobs`` is ignored (the parallel path has its own suite,
``sweep-parallel``).  It will be removed in a future cleanup.
"""

from __future__ import annotations

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.__main__ import main as repro_main  # noqa: E402


def main(argv=None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    print(
        "scripts/bench_sweep.py is deprecated; use "
        "'python -m repro bench run' (forwarding now)",
        file=sys.stderr,
    )
    forwarded = ["bench", "run"]
    quick = True
    out = None
    skip = False
    for i, arg in enumerate(argv):
        if skip:
            skip = False
            continue
        if arg == "--medium":
            quick = False
        elif arg == "--jobs":
            skip = True  # value consumed; parallelism has its own suite
        elif arg.startswith("--jobs="):
            pass
        elif arg == "--out":
            if i + 1 < len(argv):
                out = argv[i + 1]
                skip = True
        elif arg.startswith("--out="):
            out = arg.split("=", 1)[1]
        else:
            print(f"bench_sweep shim: ignoring unknown flag {arg!r}", file=sys.stderr)
    if quick:
        forwarded.append("--quick")
    if out is not None:
        forwarded += ["--out", out]
    return repro_main(forwarded)


if __name__ == "__main__":
    sys.exit(main())
