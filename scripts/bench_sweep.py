#!/usr/bin/env python
"""Micro-harness timing the sweep engine; writes ``BENCH_sweep.json``.

Runs a fixed small sweep three ways and reports wall-clock and
throughput (cells/second):

1. ``uncached`` — cache disabled, ``--jobs`` workers (the raw engine);
2. ``cold_cache`` — empty cache in a temp directory (misses + stores);
3. ``warm_cache`` — same cache again (every cell must hit).

Usage::

    PYTHONPATH=src python scripts/bench_sweep.py [--jobs N] [--medium]
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import tempfile
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.harness.cache import SweepCache  # noqa: E402
from repro.harness.sweep import run_micro_sweep  # noqa: E402


def bench(label: str, out: dict, **kwargs) -> object:
    start = time.perf_counter()
    result = run_micro_sweep(**kwargs)
    elapsed = time.perf_counter() - start
    cells = len(result.cells)
    entry = {
        "seconds": round(elapsed, 3),
        "cells": cells,
        "cells_per_sec": round(cells / elapsed, 3),
    }
    cache = kwargs.get("cache")
    if cache is not None:
        entry["cache"] = {
            "hits": cache.hits,
            "misses": cache.misses,
            "hit_rate": round(cache.hit_rate, 3),
        }
        cache.hits = cache.misses = cache.stores = 0
    out[label] = entry
    print(f"{label:12s} {elapsed:7.2f}s  {entry['cells_per_sec']:7.2f} cells/s"
          + (f"  hit_rate={entry['cache']['hit_rate']:.0%}" if "cache" in entry else ""))
    return result


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--jobs", type=int, default=1)
    parser.add_argument(
        "--medium", action="store_true",
        help="larger matrix (3 benchmarks x 2 thread counts, 150 txns)",
    )
    parser.add_argument("--out", default="BENCH_sweep.json")
    args = parser.parse_args()

    if args.medium:
        sweep_kwargs = dict(
            benchmarks=("hash", "rbtree", "sps"), threads=(1, 2), txns_per_thread=150
        )
    else:
        sweep_kwargs = dict(
            benchmarks=("hash", "sps"), threads=(1,), txns_per_thread=100
        )

    results: dict = {}
    bench("uncached", results, **sweep_kwargs, jobs=args.jobs)
    with tempfile.TemporaryDirectory() as tmp:
        cache = SweepCache(tmp)
        bench("cold_cache", results, **sweep_kwargs, jobs=args.jobs, cache=cache)
        warm = bench("warm_cache", results, **sweep_kwargs, jobs=args.jobs, cache=cache)
        if results["warm_cache"]["cache"]["hit_rate"] != 1.0:
            print("ERROR: warm pass did not hit on every cell", file=sys.stderr)
            return 1
        assert len(warm.cells) == results["uncached"]["cells"]

    payload = {
        "config": {
            **sweep_kwargs,
            "jobs": args.jobs,
            "python": platform.python_version(),
        },
        "results": results,
    }
    Path(args.out).write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
