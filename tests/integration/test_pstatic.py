"""CLI integration tests: ``repro pstatic``, ``repro lint`` strictness,
``repro cache stats``/``prune`` trace-entry handling."""

from __future__ import annotations

import json

from repro.__main__ import build_parser, main

TXNS = 8


class TestParser:
    def test_pstatic_defaults(self):
        args = build_parser().parse_args(["pstatic"])
        assert sorted(args.benchmarks.split(",")) == [
            "btree", "hash", "rbtree", "sps", "ssca2",
        ]
        assert args.threads == "1,2,4"
        assert args.txns == 40
        assert not args.differential
        assert args.markdown is None

    def test_lint_strict_flag(self):
        args = build_parser().parse_args(["lint", "--strict"])
        assert args.strict


class TestPstaticMatrix:
    def test_matrix_passes_and_annotates_unguaranteed_rows(self, capsys):
        rc = main([
            "pstatic", "--benchmarks", "hash", "--threads", "1",
            "--policies", "hwl,hw-rlog", "--txns", str(TXNS),
        ])
        out = capsys.readouterr().out
        assert rc == 0
        assert "pstatic: PASS" in out
        # hw-rlog violates undo-missing by design; the row is annotated
        # rather than failing the gate.
        assert "no guarantee claimed" in out
        assert "undo-missing" in out

    def test_json_payload(self, capsys):
        rc = main([
            "pstatic", "--benchmarks", "hash", "--threads", "1",
            "--policies", "hwl", "--txns", str(TXNS), "--json",
        ])
        payload = json.loads(capsys.readouterr().out)
        assert rc == 0
        assert payload["clean"] is True
        cell = payload["cells"][0]
        assert (cell["policy"], cell["benchmark"]) == ("hwl", "hash")
        assert cell["races"]["clean"] is True
        verdicts = cell["verdicts"]
        assert verdicts["undo-missing"]["verdict"] == "proven"

    def test_proofs_flag_prints_reasons(self, capsys):
        rc = main([
            "pstatic", "--benchmarks", "hash", "--threads", "1",
            "--policies", "hwl", "--txns", str(TXNS), "--proofs",
        ])
        out = capsys.readouterr().out
        assert rc == 0
        assert "[steal-order] proven" in out

    def test_markdown_artifact(self, tmp_path, capsys):
        artifact = tmp_path / "verdicts.md"
        rc = main([
            "pstatic", "--benchmarks", "hash", "--threads", "1",
            "--policies", "hwl", "--txns", str(TXNS),
            "--markdown", str(artifact),
        ])
        capsys.readouterr()
        assert rc == 0
        text = artifact.read_text()
        assert "Static persistency verdict matrix" in text
        assert "| hash | 1 | hwl | yes | clean |" in text


class TestPstaticDifferential:
    def test_differential_gate_passes_with_confirmations(self, capsys):
        rc = main([
            "pstatic", "--benchmarks", "hash", "--threads", "1",
            "--policies", "hwl,unsafe-base", "--txns", str(TXNS),
            "--differential",
        ])
        out = capsys.readouterr().out
        assert rc == 0
        assert "differential: PASS" in out
        # unsafe-base fires rules; each static counterexample must have
        # replay-confirmed against the dynamic diagnostics.
        assert ":confirmed" in out
        assert "UNCONFIRMED" not in out

    def test_differential_markdown_artifact(self, tmp_path, capsys):
        artifact = tmp_path / "differential.md"
        rc = main([
            "pstatic", "--benchmarks", "hash", "--threads", "1",
            "--policies", "hwl", "--txns", str(TXNS),
            "--differential", "--markdown", str(artifact),
        ])
        capsys.readouterr()
        assert rc == 0
        text = artifact.read_text()
        assert "Differential gate: **PASS**" in text
        assert "| hash | 1 | hwl | clean | clean | yes |" in text

    def test_differential_json(self, capsys):
        rc = main([
            "pstatic", "--benchmarks", "hash", "--threads", "1",
            "--policies", "unsafe-base", "--txns", str(TXNS),
            "--differential", "--json",
        ])
        payload = json.loads(capsys.readouterr().out)
        assert rc == 0
        assert payload["passed"] is True
        cell = payload["cells"][0]
        assert cell["static_fired"] == cell["dynamic_fired"]
        assert all(c["confirmed"] for c in cell["confirmations"])
        assert cell["static_cost"] > 0 and cell["dynamic_cost"] > 0


class TestLintStrict:
    def write_stale(self, tmp_path):
        pkg = tmp_path / "repro" / "sim"
        pkg.mkdir(parents=True)
        # wall-clock is active on deterministic modules but nothing on
        # this line trips it: the suppression suppresses nothing.
        (pkg / "x.py").write_text("x = 1  # lint: allow(wall-clock)\n")
        return pkg

    def test_stale_suppression_is_advisory_by_default(self, tmp_path, capsys):
        self.write_stale(tmp_path)
        rc = main(["lint", str(tmp_path)])
        out = capsys.readouterr().out
        assert rc == 0
        assert "stale-suppression" in out
        assert "informational" in out

    def test_stale_suppression_fails_strict(self, tmp_path, capsys):
        self.write_stale(tmp_path)
        rc = main(["lint", "--strict", str(tmp_path)])
        out = capsys.readouterr().out
        assert rc == 1
        assert "stale-suppression" in out

    def test_unknown_rule_suppression_reported(self, tmp_path, capsys):
        pkg = tmp_path / "repro" / "sim"
        pkg.mkdir(parents=True)
        (pkg / "x.py").write_text("x = 1  # lint: allow(bogus-rule)\n")
        rc = main(["lint", "--strict", str(pkg)])
        out = capsys.readouterr().out
        assert rc == 1
        assert "names no registered lint pass" in out

    def test_real_findings_fail_without_strict(self, tmp_path, capsys):
        pkg = tmp_path / "repro" / "sim"
        pkg.mkdir(parents=True)
        (pkg / "x.py").write_text("import random\n")
        assert main(["lint", str(pkg)]) == 1
        assert "wall-clock" in capsys.readouterr().out

    def test_json_shape(self, tmp_path, capsys):
        self.write_stale(tmp_path)
        rc = main(["lint", "--json", str(tmp_path)])
        payload = json.loads(capsys.readouterr().out)
        assert rc == 0
        assert payload["real"] == 0
        assert payload["stale_suppressions"] == 1
        assert payload["findings"][0]["rule"] == "stale-suppression"

    def test_source_tree_is_strict_clean(self, capsys):
        assert main(["lint", "--strict", "src/repro"]) == 0
        assert "lint: clean" in capsys.readouterr().out


class TestCacheStats:
    def test_stats_counts_stale_trace_entries_without_failing(
        self, tmp_path, capsys
    ):
        (tmp_path / "deadbeef.ctrace").write_bytes(b"not a trace blob")
        rc = main(["cache", "stats", "--dir", str(tmp_path)])
        out = capsys.readouterr().out
        assert rc == 0
        assert "1 stale (prunable)" in out

    def test_prune_removes_stale_trace_entries(self, tmp_path, capsys):
        junk = tmp_path / "deadbeef.ctrace"
        junk.write_bytes(b"not a trace blob")
        rc = main(["cache", "prune", "--dry-run", "--dir", str(tmp_path)])
        assert rc == 0
        assert junk.exists()
        rc = main(["cache", "prune", "--dir", str(tmp_path)])
        out = capsys.readouterr().out
        assert rc == 0
        assert not junk.exists()
        assert "trace prune" in out

    def test_stats_verifies_live_entries(self, tmp_path, capsys):
        from repro.harness.cache import TraceCache
        from repro.harness.runner import prepare_workload
        from repro.sim.replay import compile_trace
        from repro.workloads.hashtable import HashTableWorkload

        from tests.conftest import tiny_system

        prepared = prepare_workload(
            HashTableWorkload(seed=3, buckets_per_partition=8, keys_per_partition=32),
            tiny_system(),
        )
        trace = compile_trace(prepared, 1, 4)
        cache = TraceCache(tmp_path, use_disk=True)
        cache.put(cache.key(prepared.system, prepared.workload, 1, 4), trace)
        rc = main(["cache", "stats", "--dir", str(tmp_path)])
        out = capsys.readouterr().out
        assert rc == 0
        assert "1 CRC-verified" in out
        assert "0 stale" in out
