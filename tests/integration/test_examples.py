"""Smoke tests: every example script runs to completion.

The heavier examples are exercised with reduced work by monkeypatching
their knobs where needed; quickstart and crash_recovery run as-is (they
are fast).
"""

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parents[2] / "examples"


def run_example(name, argv=None, monkeypatch=None):
    if monkeypatch is not None:
        monkeypatch.setattr(sys, "argv", [name] + (argv or []))
    return runpy.run_path(str(EXAMPLES / name), run_name="__main__")


def test_quickstart_runs(capsys, monkeypatch):
    run_example("quickstart.py", monkeypatch=monkeypatch)
    out = capsys.readouterr().out
    assert "crash consistency holds." in out
    assert "transactions committed : 50" in out


def test_crash_recovery_runs(capsys, monkeypatch):
    module = run_example.__globals__  # keep flake quiet about unused
    _ = module
    # Patch the trial count down for speed.
    source = (EXAMPLES / "crash_recovery.py").read_text()
    assert "trials = 40" in source
    namespace = {}
    exec(compile(source.replace("trials = 40", "trials = 6"),
                 str(EXAMPLES / "crash_recovery.py"), "exec"), namespace)
    namespace["main"]()
    out = capsys.readouterr().out
    assert "fwb" in out and "consistent" in out
    assert "CORRUPTED" in out  # unsafe-base must corrupt somewhere


def test_policy_comparison_runs(capsys, monkeypatch):
    source = (EXAMPLES / "policy_comparison.py").read_text()
    namespace = {}
    monkeypatch.setattr(sys, "argv", ["policy_comparison.py", "hash", "1"])
    exec(compile(source.replace("txns_per_thread=300", "txns_per_thread=40"),
                 str(EXAMPLES / "policy_comparison.py"), "exec"), namespace)
    namespace["main"]()
    out = capsys.readouterr().out
    assert "fwb over best software-clwb" in out
    for policy in ("non-pers", "unsafe-base", "fwb"):
        assert policy in out


def test_durability_lag_runs(capsys, monkeypatch):
    source = (EXAMPLES / "durability_lag.py").read_text()
    namespace = {}
    exec(compile(source.replace("range(200)", "range(40)"),
                 str(EXAMPLES / "durability_lag.py"), "exec"), namespace)
    namespace["main"]()
    out = capsys.readouterr().out
    assert "commit->durable" in out
    assert "fwb" in out and "undo-clwb" in out


@pytest.mark.slow
def test_log_buffer_tuning_runs(capsys, monkeypatch):
    source = (EXAMPLES / "log_buffer_tuning.py").read_text()
    namespace = {}
    exec(compile(source.replace("txns_per_thread=250", "txns_per_thread=40"),
                 str(EXAMPLES / "log_buffer_tuning.py"), "exec"), namespace)
    namespace["main"]()
    out = capsys.readouterr().out
    assert "persistence bound" in out
