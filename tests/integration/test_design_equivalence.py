"""Golden-fixture equivalence: the mechanism refactor is bit-identical.

``tests/data/design_equivalence_golden.json`` was captured *before* the
Policy enum was decomposed into DesignSpec mechanisms, by running the
standard micro sweep (5 benchmarks x 8 designs x {1, 2} threads at
txns_per_thread=40, seed=42) and hashing each cell's canonical
MachineStats JSON.  These tests re-run the same sweep through the
refactored stack and demand the same bits — any drift means a mechanism
predicate or the commit lowering changed observable behavior.
"""

import dataclasses
import hashlib
import json
from pathlib import Path

import pytest

from repro.core.design import CANONICAL_DESIGNS
from repro.harness.cache import stats_to_dict
from repro.harness.sweep import run_micro_sweep

GOLDEN_PATH = Path(__file__).resolve().parents[1] / "data" / "design_equivalence_golden.json"


def stats_digest(stats):
    blob = json.dumps(
        dataclasses.asdict(stats), sort_keys=True, separators=(",", ":")
    )
    return hashlib.sha256(blob.encode()).hexdigest()


@pytest.fixture(scope="module")
def golden():
    return json.loads(GOLDEN_PATH.read_text())


@pytest.fixture(scope="module")
def sweep(golden):
    return run_micro_sweep(
        threads=(1, 2), txns_per_thread=golden["txns_per_thread"], seed=42
    )


def test_all_80_cells_bit_identical(golden, sweep):
    assert len(sweep.cells) == len(golden["digests"]) == 80
    mismatched = []
    for cell, stats in sweep.cells.items():
        key = f"{cell.benchmark}|{cell.threads}|{cell.policy.value}"
        if golden["digests"][key] != stats_digest(stats):
            mismatched.append(key)
    assert not mismatched, f"stats drifted for {len(mismatched)} cells: {mismatched}"


@pytest.mark.parametrize("design", CANONICAL_DESIGNS, ids=lambda d: d.name)
def test_hash_1t_full_stats_identical(golden, sweep, design):
    """Field-level comparison for one cell per design, so a drift points
    at the exact counter rather than an opaque digest mismatch."""
    stats = sweep.stats("hash", 1, design)
    expected = golden["full_hash_1t"][design.name]
    actual = json.loads(json.dumps(stats_to_dict(stats)))
    assert actual == expected
