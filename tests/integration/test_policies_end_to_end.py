"""End-to-end behaviour of all eight designs on a real workload.

These tests pin the paper's *qualitative* claims — who is faster, who
executes more instructions, who writes more NVRAM — on a small hash
workload.  The quantitative reproduction lives in benchmarks/.
"""

import pytest

from repro import Policy
from repro.harness.runner import RunConfig, prepare_workload, run_workload
from repro.workloads.hashtable import HashTableWorkload
from tests.conftest import tiny_system


@pytest.fixture(scope="module")
def results():
    system = tiny_system(num_cores=2)
    workload = HashTableWorkload(seed=1, buckets_per_partition=32, keys_per_partition=256)
    prepared = prepare_workload(workload, system)
    stats = {}
    for policy in Policy:
        outcome = run_workload(
            workload,
            RunConfig(policy=policy, threads=1, txns_per_thread=150, system=system),
            prepared=prepared,
        )
        stats[policy] = outcome.stats
    return stats


class TestThroughputOrdering:
    def test_non_pers_is_fastest(self, results):
        best = max(results.values(), key=lambda s: s.throughput)
        assert best is results[Policy.NON_PERS]

    def test_fwb_beats_software_clwb(self, results):
        assert results[Policy.FWB].throughput > results[Policy.REDO_CLWB].throughput
        assert results[Policy.FWB].throughput > results[Policy.UNDO_CLWB].throughput

    def test_hwl_beats_software_clwb(self, results):
        best_sw = max(
            results[Policy.REDO_CLWB].throughput,
            results[Policy.UNDO_CLWB].throughput,
        )
        assert results[Policy.HWL].throughput > best_sw

    def test_fwb_at_least_hwl(self, results):
        assert results[Policy.FWB].throughput >= results[Policy.HWL].throughput

    def test_clwb_degrades_versus_unsafe(self, results):
        assert results[Policy.UNDO_CLWB].throughput < results[Policy.UNSAFE_BASE].throughput


class TestInstructionCounts:
    def test_software_logging_doubles_instructions(self, results):
        non_pers = results[Policy.NON_PERS].instructions
        for policy in (Policy.UNSAFE_BASE, Policy.REDO_CLWB, Policy.UNDO_CLWB):
            assert results[policy].instructions > 1.7 * non_pers

    def test_hardware_logging_near_non_pers(self, results):
        non_pers = results[Policy.NON_PERS].instructions
        for policy in (Policy.HW_RLOG, Policy.HW_ULOG, Policy.HWL, Policy.FWB):
            assert results[policy].instructions < 1.5 * non_pers

    def test_hw_logging_emits_zero_logging_instructions(self, results):
        """HWL generates log *records* without log *instructions*: the
        instruction stream of fwb equals hw-rlog's exactly."""
        assert results[Policy.FWB].instructions == results[Policy.HW_RLOG].instructions


class TestTrafficAndEnergy:
    def test_non_pers_writes_least(self, results):
        for policy in Policy:
            if policy is not Policy.NON_PERS:
                assert (
                    results[policy].nvram_write_bytes
                    >= results[Policy.NON_PERS].nvram_write_bytes
                )

    def test_clwb_designs_write_most(self, results):
        assert (
            results[Policy.UNDO_CLWB].nvram_write_bytes
            > results[Policy.FWB].nvram_write_bytes
        )

    def test_log_records_only_under_logging(self, results):
        assert results[Policy.NON_PERS].log_records == 0
        for policy in Policy:
            if policy is not Policy.NON_PERS:
                assert results[policy].log_records > 0

    def test_memory_energy_tracks_traffic(self, results):
        assert (
            results[Policy.UNDO_CLWB].memory_dynamic_energy_pj
            > results[Policy.FWB].memory_dynamic_energy_pj
            > results[Policy.NON_PERS].memory_dynamic_energy_pj
        )


class TestCommitSemantics:
    def test_all_policies_commit_everything(self, results):
        for policy, stats in results.items():
            assert stats.transactions_committed == 150, policy

    def test_fwb_scanner_ran_only_under_fwb(self, results):
        assert results[Policy.FWB].fwb_scans >= 0
        for policy in Policy:
            if policy is not Policy.FWB:
                assert results[policy].fwb_scans == 0

    def test_clwb_counts(self, results):
        for policy in (Policy.REDO_CLWB, Policy.UNDO_CLWB, Policy.HWL):
            assert results[policy].clwb_count > 0
        for policy in (Policy.NON_PERS, Policy.UNSAFE_BASE, Policy.FWB):
            assert results[policy].clwb_count == 0

    def test_fences_only_in_software_protocols(self, results):
        assert results[Policy.FWB].fence_stall_cycles == 0
        assert results[Policy.HWL].fence_stall_cycles == 0
        assert results[Policy.UNDO_CLWB].fence_stall_cycles > 0
