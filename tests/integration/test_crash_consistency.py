"""Crash-consistency integration tests on real workloads.

The property tests (tests/properties) cover synthetic transaction mixes;
here the hash microbenchmark runs under each guaranteed design, the
machine crashes at randomized instants, and recovery must reproduce the
golden committed state.  A final test demonstrates that ``unsafe-base``
earns its name.
"""

import random

import pytest

from repro import Machine, PersistentMemory, Policy, RecoveryManager
from repro.sim.config import LoggingConfig
from repro.workloads.hashtable import HashTableWorkload
from tests.conftest import tiny_system, word

GUARANTEED = [Policy.FWB, Policy.HWL, Policy.UNDO_CLWB, Policy.REDO_CLWB]


def run_crash_trial(policy, seed, crash_fraction, threads=1, log_entries=128):
    system = tiny_system(logging=LoggingConfig(log_entries=log_entries))
    machine = Machine(system, policy)
    pm = PersistentMemory(machine)
    workload = HashTableWorkload(
        seed=seed, buckets_per_partition=16, keys_per_partition=64
    )
    workload.setup(pm)
    generators = [
        workload.thread_body(pm.api(tid, tid), tid, 60) for tid in range(threads)
    ]
    done = [False] * threads
    while not all(done):
        for tid, gen in enumerate(generators):
            if not done[tid]:
                try:
                    next(gen)
                except StopIteration:
                    done[tid] = True
    horizon = max(
        max(machine.core_time(t) for t in range(threads)),
        max((t for t, _ in pm.golden.commits), default=0.0),
    )
    crash_time = horizon * crash_fraction
    machine.crash(at_time=crash_time)
    RecoveryManager(machine.nvram, machine.log).recover()
    expected = pm.golden.expected_at(crash_time)
    mismatches = []
    for addr in pm.golden.touched_addresses():
        want = expected.get(addr)
        if want is None:
            continue  # written only by post-crash transactions
        got = machine.nvram.peek(addr, len(want))
        if got != want:
            mismatches.append((addr, got, want))
    return mismatches


@pytest.mark.parametrize("policy", GUARANTEED, ids=lambda p: p.value)
@pytest.mark.parametrize("fraction", [0.15, 0.5, 0.9])
def test_workload_crash_consistency(policy, fraction):
    assert run_crash_trial(policy, seed=7, crash_fraction=fraction) == []


@pytest.mark.parametrize("policy", [Policy.FWB, Policy.HWL], ids=lambda p: p.value)
def test_multithreaded_crash_consistency(policy):
    assert run_crash_trial(policy, seed=11, crash_fraction=0.6, threads=2) == []


@pytest.mark.parametrize("policy", GUARANTEED, ids=lambda p: p.value)
def test_crash_consistency_under_log_wrap(policy):
    assert (
        run_crash_trial(policy, seed=13, crash_fraction=0.7, log_entries=32) == []
    )


def test_unsafe_base_violates_consistency_somewhere():
    """unsafe-base offers no guarantee: across many crash points some
    committed transaction must be lost or some partial state leak through
    (this is exactly why the paper calls the configuration "unsafe")."""
    violations = 0
    for seed in range(6):
        rng = random.Random(seed)
        mismatches = run_crash_trial(
            Policy.UNSAFE_BASE, seed=seed, crash_fraction=0.3 + 0.1 * rng.random()
        )
        violations += bool(mismatches)
    assert violations > 0


def test_recovered_image_is_reusable():
    """After recovery the log is reset and a new machine can keep going
    from the recovered image."""
    system = tiny_system()
    machine = Machine(system, Policy.FWB)
    pm = PersistentMemory(machine)
    api = pm.api(0)
    addr = pm.heap.alloc(8)
    pm.setup_write(addr, word(0))
    with api.transaction():
        api.write(addr, word(41))
    durable = pm.golden.commits[-1][0]
    machine.crash(at_time=durable)
    RecoveryManager(machine.nvram, machine.log).recover()
    image = bytes(machine.nvram.image)

    restarted = Machine(system, Policy.FWB)
    restarted.nvram.image[:] = image
    pm2 = PersistentMemory(restarted)
    api2 = pm2.api(0)
    assert api2.read(addr, 8) == word(41)
    api2.tx_begin()
    api2.write(addr, word(42))
    api2.tx_commit()
    assert api2.read(addr, 8) == word(42)
