"""End-to-end ``repro bench`` CLI: run, update, compare, exit codes.

Uses the cheap suites only (logbuffer-drain, cache-probe) so the whole
file stays in the sub-second range; full-matrix runs are CI's job.
"""

import json

import pytest

from repro.__main__ import main
from repro.bench import SCHEMA
from repro.bench.runner import ENV_PERTURB

SUITES = "logbuffer-drain,cache-probe"


@pytest.fixture
def in_tmp(tmp_path, monkeypatch):
    """Run CLI invocations from an empty cwd (default baseline paths)."""
    monkeypatch.chdir(tmp_path)
    return tmp_path


def bench(*argv):
    return main(["bench", *argv])


class TestRun:
    def test_run_writes_schema_versioned_file(self, in_tmp):
        rc = bench(
            "run", "--quick", "--suites", SUITES, "--repeats", "1",
            "--out", "fresh.json",
        )
        assert rc == 0
        doc = json.loads((in_tmp / "fresh.json").read_text())
        assert doc["schema"] == SCHEMA
        assert doc["mode"] == "quick"
        assert set(doc["suites"]) == {"logbuffer-drain", "cache-probe"}
        for entry in doc["suites"].values():
            assert entry["counters"]
            assert entry["counter_drift"] is False

    def test_run_json_output_parses(self, in_tmp, capsys):
        rc = bench("run", "--quick", "--suites", SUITES, "--repeats", "1", "--json")
        assert rc == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["schema"] == SCHEMA

    def test_unknown_suite_is_usage_error(self, in_tmp):
        assert bench("run", "--quick", "--suites", "nonesuch") == 2


class TestCompare:
    def test_back_to_back_runs_have_zero_counter_drift(self, in_tmp, capsys):
        assert bench("update", "--quick", "--suites", SUITES, "--repeats", "1") == 0
        rc = bench(
            "compare", "--quick", "--suites", SUITES, "--repeats", "1",
            "--no-wall-gate",
        )
        assert rc == 0
        assert "bench compare: PASS" in capsys.readouterr().out

    def test_compare_from_saved_run_file(self, in_tmp):
        assert bench("update", "--quick", "--suites", SUITES, "--repeats", "1") == 0
        assert bench(
            "run", "--quick", "--suites", SUITES, "--repeats", "1",
            "--out", "fresh.json",
        ) == 0
        rc = bench(
            "compare", "--quick", "--from", "fresh.json", "--no-wall-gate"
        )
        assert rc == 0

    def test_perturbed_suite_fails_and_is_named_in_report(
        self, in_tmp, monkeypatch, capsys
    ):
        assert bench("update", "--quick", "--suites", SUITES, "--repeats", "1") == 0
        monkeypatch.setenv(ENV_PERTURB, "cache-probe=1.5")
        rc = bench(
            "compare", "--quick", "--suites", SUITES, "--repeats", "1",
            "--no-wall-gate", "--report", "report.md",
        )
        assert rc == 1
        out = capsys.readouterr().out
        assert "bench compare: FAIL" in out
        report = (in_tmp / "report.md").read_text()
        assert "REGRESSION" in report
        assert "cache-probe" in report
        # The untouched suite must not be blamed.
        assert "| logbuffer-drain |" not in report.split("## Wall-clock")[0]

    def test_missing_baseline_is_exit_2(self, in_tmp, capsys):
        rc = bench("compare", "--quick", "--suites", SUITES, "--repeats", "1")
        assert rc == 2
        assert "no baseline" in capsys.readouterr().err

    def test_schema_mismatch_is_exit_2(self, in_tmp, capsys):
        assert bench("update", "--quick", "--suites", SUITES, "--repeats", "1") == 0
        path = in_tmp / "BENCH_quick.json"
        doc = json.loads(path.read_text())
        doc["schema"] = "repro-bench/v0"
        path.write_text(json.dumps(doc))
        rc = bench(
            "compare", "--quick", "--suites", SUITES, "--repeats", "1"
        )
        assert rc == 2
        assert "schema" in capsys.readouterr().err


class TestUpdateAndList:
    def test_update_writes_default_path_by_mode(self, in_tmp):
        assert bench("update", "--quick", "--suites", SUITES, "--repeats", "1") == 0
        assert (in_tmp / "BENCH_quick.json").exists()

    def test_update_custom_baseline_path(self, in_tmp):
        rc = bench(
            "update", "--quick", "--suites", SUITES, "--repeats", "1",
            "--baseline", "custom.json",
        )
        assert rc == 0
        assert (in_tmp / "custom.json").exists()

    def test_list_names_all_suites(self, in_tmp, capsys):
        assert bench("list") == 0
        out = capsys.readouterr().out
        for name in ("sweep-serial", "recovery-replay", "ablate-grid"):
            assert name in out
