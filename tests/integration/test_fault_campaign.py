"""Integration tests for the fault-injection campaign engine.

The unit tests (tests/unit/test_faults.py) cover plans, monitors and
point enumeration in isolation; here whole campaigns run on the real
simulator.  The guaranteed designs must survive every enumerated crash
point — including torn-log and ghost-record variants — while
``unsafe-base`` must demonstrably fail, and the whole matrix must be
reproducible bit-for-bit.
"""

import dataclasses

import pytest

from repro import Machine, PersistentMemory, Policy, RecoveryManager
from repro.errors import SimulatedCrash
from repro.faults import (
    FAULT_GHOST,
    FAULT_NONE,
    FAULT_TORN,
    CrashPoint,
    EventKind,
    FaultMonitor,
    run_fault_campaign,
)
from repro.faults.campaign import campaign_workload, default_campaign_system

GUARANTEED = [Policy.FWB, Policy.HWL, Policy.UNDO_CLWB, Policy.REDO_CLWB]

# Small budgets keep every campaign here well under a second.
POINTS = 16
TXNS = 24


def small_campaign(policies, **overrides):
    kwargs = dict(
        policies=policies,
        workload="hash",
        points=POINTS,
        txns_per_thread=TXNS,
        threads=1,
        seed=7,
    )
    kwargs.update(overrides)
    return run_fault_campaign(**kwargs)


@pytest.mark.parametrize("policy", GUARANTEED, ids=lambda p: p.value)
def test_guaranteed_policy_survives_all_points(policy):
    result = small_campaign((policy,))
    assert result.passed
    (report,) = result.reports
    assert report.consistent
    assert len(report.points) >= POINTS // 2
    # The plan must actually exercise the fault variants, not just
    # plain crashes.
    faults = {point.point.fault for point in report.points}
    assert faults >= {FAULT_NONE, FAULT_TORN, FAULT_GHOST}
    kinds = {point.point.kind for point in report.points}
    assert EventKind.RETIRE in kinds


def test_torn_faults_are_applied_and_skipped():
    # Across the torn-fault points of a guaranteed design, at least one
    # injected tear must land on the log and be rejected by the scan.
    result = small_campaign((Policy.FWB,), points=24)
    (report,) = result.reports
    torn_points = [p for p in report.points if p.point.fault == FAULT_TORN]
    assert torn_points
    assert any(point.fault_applied for point in torn_points)
    assert report.torn_records_skipped >= 1
    assert report.consistent


def test_ghost_records_are_rejected():
    result = small_campaign((Policy.FWB,))
    (report,) = result.reports
    ghost_points = [p for p in report.points if p.point.fault == FAULT_GHOST]
    assert ghost_points
    assert any(point.fault_applied for point in ghost_points)
    assert report.consistent


def test_mid_recovery_points_converge():
    result = small_campaign((Policy.UNDO_CLWB,))
    (report,) = result.reports
    recovery_points = [
        p for p in report.points if p.point.kind is EventKind.RECOVERY
    ]
    assert recovery_points
    assert all(point.converged for point in recovery_points)


def test_unsafe_base_demonstrably_fails():
    result = small_campaign((Policy.UNSAFE_BASE,))
    (report,) = result.reports
    assert not report.consistent
    assert len(report.violations) >= 1
    # An unguaranteed design's violations are expected, not a campaign
    # failure.
    assert result.passed
    assert "expected" in report.verdict


def test_campaign_is_deterministic():
    first = small_campaign((Policy.FWB,))
    second = small_campaign((Policy.FWB,))
    flatten = lambda result: [
        dataclasses.astuple(point) for point in result.reports[0].points
    ]
    assert flatten(first) == flatten(second)


# ----------------------------------------------------------------------
# Double-recovery idempotence (recovery must be restartable at any time)
# ----------------------------------------------------------------------
@pytest.mark.parametrize("policy", GUARANTEED, ids=lambda p: p.value)
def test_double_recovery_is_idempotent(policy):
    """Recovering an already-recovered image must change nothing.

    A machine crash *after* recovery but before the first new
    transaction replays the log again; the second pass must find the
    reset marker and leave the image bit-identical.
    """
    system = default_campaign_system()
    machine = Machine(system, policy)
    pm = PersistentMemory(machine)
    workload = campaign_workload("hash", seed=11)
    workload.setup(pm)
    machine.fault_monitor = FaultMonitor(CrashPoint(EventKind.RETIRE, 400))
    crash = None
    try:
        for _ in workload.thread_body(pm.api(0, 0), 0, TXNS):
            pass
    except SimulatedCrash as exc:
        crash = exc
    if crash is not None:
        machine.crash_at_point(crash)
    else:
        machine.crash()

    first = RecoveryManager(machine.nvram, machine.log).recover()
    after_first = bytes(machine.nvram.image)
    second = RecoveryManager(machine.nvram, machine.log).recover()
    assert bytes(machine.nvram.image) == after_first
    assert second.total_writes == 0
    assert second.window_entries == 0
    # Sanity: the first pass actually had work to do on this crashy run.
    assert crash is None or first.records_scanned >= 0
