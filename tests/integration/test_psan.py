"""End-to-end tests for the persistency-ordering sanitizer.

The acceptance bar from the paper reproduction: the guaranteed designs
(hwl, fwb, and the software-logging baselines) run every microbenchmark
clean, while each deliberately-broken design trips exactly the rule its
missing mechanism implies.  A subset of that matrix runs here; the full
5-benchmark x 4-thread sweep is the CI ``repro psan`` job.
"""

import json

import pytest

from repro.__main__ import main
from repro.core.policy import Policy
from repro.harness.sweep import run_micro_sweep
from repro.sanitizer.checker import (
    PersistOrderChecker,
    PsanSweepReport,
    run_psan,
)
from repro.sanitizer.rules import PsanReport
from repro.sim.trace import Tracer

TXNS = 15  # enough to wrap nothing but exercise every rule's machinery


def psan(policy, benchmark="hash", threads=1, **kw):
    return run_psan(benchmark, policy, threads=threads,
                    txns_per_thread=TXNS, **kw)


class TestGuaranteedDesignsClean:
    @pytest.mark.parametrize("policy", [Policy.HWL, Policy.FWB])
    @pytest.mark.parametrize("threads", [1, 2])
    def test_hardware_designs_clean(self, policy, threads):
        report = psan(policy, threads=threads)
        assert report.clean, report.render()
        assert report.txns_checked == TXNS * threads

    @pytest.mark.parametrize("policy", [Policy.UNDO_CLWB, Policy.REDO_CLWB])
    def test_software_baselines_clean(self, policy):
        report = psan(policy)
        assert report.clean, report.render()

    @pytest.mark.parametrize("bench", ["rbtree", "sps"])
    def test_other_microbenchmarks_clean_under_hwl(self, bench):
        report = psan(Policy.HWL, benchmark=bench)
        assert report.clean, report.render()


class TestBrokenDesignsTrip:
    def test_unsafe_base_trips_commit_durability(self):
        # No clwb ordering at all: commits are reported durable while the
        # records sit in volatile buffers.
        report = psan(Policy.UNSAFE_BASE)
        assert not report.clean
        assert "commit-durability" in report.rules_fired()

    def test_hw_rlog_trips_undo_missing(self):
        # Redo-only hardware logging steals dirty lines it cannot undo.
        report = psan(Policy.HW_RLOG)
        assert report.rules_fired() == {"undo-missing"}

    def test_hw_ulog_trips_redo_missing(self):
        # Undo-only hardware logging commits without forcing data back.
        report = psan(Policy.HW_ULOG)
        assert report.rules_fired() == {"redo-missing"}

    def test_diagnostics_carry_provenance(self):
        report = psan(Policy.HW_RLOG)
        diag = report.diagnostics[0]
        assert diag.provenance  # the event chain that led here
        assert diag.addr is not None
        assert "undo" in diag.message


class TestOfflineTraces:
    def test_saved_trace_rechecks_identically(self, tmp_path):
        path = str(tmp_path / "hwl.jsonl")
        live = psan(Policy.HWL, trace_path=path)
        replayed = PersistOrderChecker.check_events(
            Tracer.from_jsonl(path).events()
        )
        assert live.clean and replayed.clean
        assert replayed.events_processed == live.events_processed
        assert replayed.txns_checked == live.txns_checked

    def test_saved_violating_trace_rechecks_identically(self, tmp_path):
        path = str(tmp_path / "rlog.jsonl")
        live = psan(Policy.HW_RLOG, trace_path=path)
        replayed = PersistOrderChecker.check_events(
            Tracer.from_jsonl(path).events()
        )
        assert replayed.rules_fired() == live.rules_fired()
        assert len(replayed.diagnostics) == len(live.diagnostics)


class TestSweepIntegration:
    def test_sweep_psan_collects_reports_in_matrix_order(self):
        sweep = PsanSweepReport()
        run_micro_sweep(
            benchmarks=("hash",),
            threads=(1, 2),
            policies=(Policy.HWL, Policy.FWB),
            txns_per_thread=TXNS,
            psan_report=sweep,
        )
        assert [(r.benchmark, r.threads, r.policy) for r in sweep.reports] == [
            ("hash", 1, "hwl"), ("hash", 1, "fwb"),
            ("hash", 2, "hwl"), ("hash", 2, "fwb"),
        ]
        assert sweep.clean

    def test_sweep_clean_ignores_unguaranteed_designs(self):
        sweep = PsanSweepReport()
        run_micro_sweep(
            benchmarks=("hash",),
            threads=(1,),
            policies=(Policy.HWL, Policy.HW_RLOG),
            txns_per_thread=TXNS,
            psan_report=sweep,
        )
        by_policy = {r.policy: r for r in sweep.reports}
        assert by_policy["hwl"].clean
        assert not by_policy["hw-rlog"].clean  # expected: no guarantee
        assert sweep.clean
        assert "no guarantee claimed" in sweep.render()

    def test_sweep_psan_parallel_matches_serial(self):
        serial, parallel = PsanSweepReport(), PsanSweepReport()
        kw = dict(
            benchmarks=("hash",), threads=(1,), policies=(Policy.HWL,),
            txns_per_thread=TXNS,
        )
        run_micro_sweep(psan_report=serial, **kw)
        run_micro_sweep(psan_report=parallel, jobs=2, **kw)
        a, b = serial.reports[0], parallel.reports[0]
        assert (a.clean, a.events_processed, a.txns_checked) == (
            b.clean, b.events_processed, b.txns_checked
        )


class TestCli:
    def test_psan_command_passes_on_guaranteed_designs(self, capsys):
        rc = main([
            "psan", "--benchmarks", "hash", "--threads", "1",
            "--txns", str(TXNS),
        ])
        out = capsys.readouterr().out
        assert rc == 0
        assert "psan: PASS" in out
        assert "adversarial unsafe-base" in out  # probes ran and tripped

    def test_psan_json_output(self, capsys):
        rc = main([
            "psan", "--benchmarks", "hash", "--threads", "1",
            "--policies", "hwl", "--txns", str(TXNS),
            "--no-adversarial", "--json",
        ])
        payload = json.loads(capsys.readouterr().out)
        assert rc == 0
        assert payload["matrix"]["clean"] is True
        cell = payload["matrix"]["cells"][0]
        assert (cell["policy"], cell["benchmark"]) == ("hwl", "hash")

    def test_psan_reports_unguaranteed_rows_without_failing(self, capsys):
        rc = main([
            "psan", "--benchmarks", "hash", "--threads", "1",
            "--policies", "hw-rlog,hwl", "--txns", str(TXNS),
            "--no-adversarial",
        ])
        out = capsys.readouterr().out
        # hw-rlog claims no guarantee, so the matrix is still a PASS --
        # the row is annotated instead of failing the gate.
        assert rc == 0
        assert "no guarantee claimed" in out

    def test_from_trace_roundtrip(self, tmp_path, capsys):
        traces = tmp_path / "traces"
        traces.mkdir()
        rc = main([
            "psan", "--benchmarks", "hash", "--threads", "1",
            "--policies", "hwl", "--txns", str(TXNS),
            "--no-adversarial", "--save-trace", str(traces),
        ])
        assert rc == 0
        saved = list(traces.glob("*.jsonl"))
        assert len(saved) == 1
        capsys.readouterr()
        rc = main(["psan", "--from-trace", str(saved[0])])
        out = capsys.readouterr().out
        assert rc == 0
        assert "clean" in out

    def test_lint_command_clean_tree(self, capsys):
        assert main(["lint"]) == 0
        assert "lint: clean" in capsys.readouterr().out

    def test_lint_command_finds_violations(self, tmp_path, capsys):
        bad = tmp_path / "repro" / "sim"
        bad.mkdir(parents=True)
        (bad / "x.py").write_text("import random\n")
        rc = main(["lint", str(tmp_path)])
        out = capsys.readouterr().out
        assert rc == 1
        assert "wall-clock" in out

    def test_figure_psan_flag(self, capsys):
        rc = main(["figure", "6", "--quick", "--psan", "--no-cache"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "hwl" in out and "clean" in out


class TestSweepReportRendering:
    def make_sweep(self, *policies):
        sweep = PsanSweepReport()
        for policy in policies:
            sweep.reports.append(PsanReport(
                policy=policy, benchmark="hash", threads=1,
                events_processed=1234, txns_checked=20,
            ))
        return sweep

    def test_policy_column_fits_longest_composed_name(self):
        long_name = "hw+undo+redo+clwb+instant"
        sweep = self.make_sweep("hwl", long_name)
        lines = sweep.render().splitlines()
        header, short_row, long_row = lines[0], lines[2], lines[3]
        # The verdict column starts at the same offset in every row:
        # no shearing even when one policy name dwarfs the others.
        assert header.index("verdict") == short_row.index("clean")
        assert short_row.index("clean") == long_row.index("clean")
        assert long_name in long_row

    def test_short_names_keep_compact_layout(self):
        sweep = self.make_sweep("hwl", "fwb")
        separator = sweep.render().splitlines()[1]
        # Column width collapses back to the header word when every
        # policy name is short.
        assert len(separator) == len("policy") + 50
