"""Execution-engine guarantees beyond raw stats equivalence.

* the via-API replay engine reproduces the **full tracer event stream**
  of an interpreted run (time, kind, core, detail — not just counters),
  so every tracer consumer (psan included) sees identical input;
* the persistency-ordering sanitizer reaches the same verdicts (and the
  same diagnostics) over the compiled path;
* the numpy and stdlib derive paths compute identical columns;
* the trace codec and pickling round-trip without changing replay
  behaviour.
"""

import dataclasses
import pickle

import pytest

from repro.core.design import CANONICAL_DESIGNS, FWB, HWL, UNSAFE_BASE
from repro.harness.runner import RunConfig, prepare_workload, run_workload
from repro.sanitizer.checker import PersistOrderChecker
from repro.sim.ctrace import CompiledTrace, numpy_available
from repro.sim.replay import compile_trace, run_compiled
from repro.sim.trace import Tracer
from repro.workloads.hashtable import HashTableWorkload
from tests.conftest import tiny_system

THREADS = 2
TXNS = 6


@pytest.fixture(scope="module")
def prepared():
    return prepare_workload(
        HashTableWorkload(seed=11, buckets_per_partition=16, keys_per_partition=64),
        tiny_system(),
    )


@pytest.fixture(scope="module")
def trace(prepared):
    return compile_trace(prepared, THREADS, TXNS)


def _config(design, system):
    return RunConfig(
        policy=design,
        threads=THREADS,
        txns_per_thread=TXNS,
        system=system,
        seed=11,
    )


def _event_tuples(tracer):
    return [
        (event.time, event.kind, event.core, tuple(sorted(event.detail.items())))
        for event in tracer.events()
    ]


class TestEventStreams:
    @pytest.mark.parametrize("design", CANONICAL_DESIGNS, ids=lambda d: d.name)
    def test_tracer_stream_identical(self, prepared, trace, design):
        streams = []
        for runner in ("interpret", "replay"):
            tracer = Tracer()

            def hook(machine):
                machine.tracer = tracer

            config = _config(design, prepared.system)
            if runner == "interpret":
                outcome = run_workload(
                    prepared.workload, config, prepared=prepared, machine_hook=hook
                )
            else:
                outcome = run_compiled(trace, config, machine_hook=hook)
            streams.append((_event_tuples(tracer), dataclasses.asdict(outcome.stats)))
        (events_a, stats_a), (events_b, stats_b) = streams
        assert len(events_a) > 0
        assert events_a == events_b
        assert stats_a == stats_b

    @pytest.mark.parametrize(
        "design", [HWL, FWB, UNSAFE_BASE], ids=lambda d: d.name
    )
    def test_psan_verdicts_identical(self, prepared, trace, design):
        reports = []
        for runner in ("interpret", "replay"):
            holder = {}

            def hook(machine):
                holder["checker"] = PersistOrderChecker.attach(machine)

            config = _config(design, prepared.system)
            if runner == "interpret":
                run_workload(
                    prepared.workload, config, prepared=prepared, machine_hook=hook
                )
            else:
                run_compiled(trace, config, machine_hook=hook)
            reports.append(holder["checker"].finish())
        first, second = reports
        assert first.events_processed == second.events_processed > 0
        assert first.txns_checked == second.txns_checked > 0
        assert first.clean == second.clean
        assert [d.to_dict() for d in first.diagnostics] == [
            d.to_dict() for d in second.diagnostics
        ]


class TestDerivedColumns:
    @pytest.mark.skipif(not numpy_available(), reason="numpy not installed")
    def test_numpy_matches_stdlib(self, trace):
        line_size = 64
        trace.derive(line_size, use_numpy=True)
        with_numpy = [list(col.read_line) for col in trace.thread_cols]
        trace.derive(line_size, use_numpy=False)
        stdlib = [list(col.read_line) for col in trace.thread_cols]
        assert with_numpy == stdlib
        assert any(any(line >= 0 for line in lines) for lines in stdlib)


class TestCodec:
    def test_roundtrips_preserve_replay(self, prepared, trace):
        config = _config(HWL, prepared.system)
        want = dataclasses.asdict(run_compiled(trace, config).stats)
        decoded = CompiledTrace.from_bytes(trace.to_bytes())
        unpickled = pickle.loads(pickle.dumps(trace))
        for clone in (decoded, unpickled):
            assert dataclasses.asdict(run_compiled(clone, config).stats) == want

    def test_codec_structural_identity(self, trace):
        clone = CompiledTrace.from_bytes(trace.to_bytes())
        assert clone.workload_key == trace.workload_key
        assert clone.threads == trace.threads
        assert clone.txns_per_thread == trace.txns_per_thread
        assert clone.op_count() == trace.op_count()
        assert clone.piece_count() == trace.piece_count()
        assert clone.image_prefix == trace.image_prefix
        assert clone.heap_state == trace.heap_state
        for mine, theirs in zip(trace.thread_cols, clone.thread_cols):
            assert mine.column_blobs() == theirs.column_blobs()
