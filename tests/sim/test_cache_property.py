"""Property-style check: dict-based cache == seed's linear-scan cache.

The set-associative cache was rewritten from per-set line *lists* probed
by linear scan to per-set ``dict[tag -> line]`` probed by hash lookup.
The rewrite must be bit-identical — same hits, same LRU victims (including
the first-inserted-wins tie-break on equal ``last_use``), same dirty/fwb
bits on evicted state.  This test replays long randomized operation
sequences against a reference reimplementation of the original
list-based semantics and compares every observable after every step.
"""

import random

import pytest

from repro.sim.cache import CacheLine, SetAssociativeCache
from repro.sim.config import CacheConfig

LINE = 64


class LinearScanCache:
    """Reference model: the seed's list-based LRU set-associative cache."""

    def __init__(self, config: CacheConfig) -> None:
        self._sets: dict[int, list[CacheLine]] = {}
        self._num_sets = config.num_sets
        self._line_size = config.line_size
        self._ways = config.ways

    def _index(self, line_addr: int) -> int:
        return (line_addr // self._line_size) % self._num_sets

    def lookup(self, addr: int):
        line_addr = addr - (addr % self._line_size)
        for line in self._sets.get(self._index(line_addr), ()):
            if line.addr == line_addr:
                return line
        return None

    def insert(self, line_addr: int, data: bytes, now: float, dirty: bool = False):
        bucket = self._sets.setdefault(self._index(line_addr), [])
        victim = None
        if len(bucket) >= self._ways:
            lru = min(bucket, key=lambda ln: ln.last_use)
            bucket.remove(lru)
            victim = (lru.addr, bytes(lru.data), lru.dirty, lru.log_release)
        line = CacheLine(line_addr, data, now)
        line.dirty = dirty
        bucket.append(line)
        return victim

    def invalidate(self, addr: int):
        line_addr = addr - (addr % self._line_size)
        bucket = self._sets.get(self._index(line_addr))
        if not bucket:
            return None
        for line in bucket:
            if line.addr == line_addr:
                bucket.remove(line)
                return (line.addr, bytes(line.data), line.dirty, line.log_release)
        return None

    def lines(self):
        for bucket in self._sets.values():
            yield from bucket


def line_state(line):
    return (line.addr, bytes(line.data), line.dirty, line.fwb, line.last_use)


def evicted_state(ev):
    if ev is None or isinstance(ev, tuple):
        return ev
    return (ev.addr, ev.data, ev.dirty, ev.log_release)


def assert_same_contents(cache, model):
    assert sorted(line_state(l) for l in cache.iter_lines()) == sorted(
        line_state(l) for l in model.lines()
    )


@pytest.mark.parametrize("seed", [0, 1, 2, 3])
def test_dict_cache_matches_linear_scan(seed):
    config = CacheConfig(size_bytes=8 * LINE * 4, ways=4, line_size=LINE)
    cache = SetAssociativeCache(config, "dut")
    model = LinearScanCache(config)
    rng = random.Random(seed)
    # A small address pool forces heavy set conflict (constant evictions)
    # and frequent re-touches of resident lines.
    addrs = [i * LINE for i in range(40)]
    now = 0.0

    for step in range(3000):
        now += rng.choice([0.0, 0.0, 1.0])  # repeated timestamps hit the tie-break
        op = rng.random()
        addr = rng.choice(addrs) + rng.randrange(LINE)
        line_addr = addr - (addr % LINE)
        if op < 0.55:
            got, want = cache.lookup(addr), model.lookup(addr)
            assert (got is None) == (want is None), f"step {step}: hit mismatch"
            if got is not None:
                assert line_state(got) == line_state(want)
                # Mutate both sides the way the hierarchy does on a hit.
                cache.touch(got, now)
                want.last_use = now
                if rng.random() < 0.4:
                    got.dirty = want.dirty = True
                if rng.random() < 0.2:
                    got.fwb = want.fwb = True
                if rng.random() < 0.2:
                    release = rng.random() * 100
                    got.log_release = want.log_release = release
            else:
                data = bytes([rng.randrange(256)]) * LINE
                dirty = rng.random() < 0.5
                got_ev = cache.insert(line_addr, data, now, dirty=dirty)
                want_ev = model.insert(line_addr, data, now, dirty=dirty)
                assert evicted_state(got_ev) == evicted_state(want_ev), (
                    f"step {step}: victim mismatch"
                )
        elif op < 0.7:
            got_ev = cache.invalidate(addr)
            want_ev = model.invalidate(addr)
            assert evicted_state(got_ev) == evicted_state(want_ev)
        elif op < 0.85:
            # fill() is the hot-path combined insert+return-line API.
            if cache.lookup(line_addr) is None:
                data = bytes([step % 256]) * LINE
                line, got_ev = cache.fill(line_addr, data, now)
                want_ev = model.insert(line_addr, data, now)
                assert line.addr == line_addr
                assert evicted_state(got_ev) == evicted_state(want_ev)
        else:
            assert cache.occupancy == sum(1 for _ in model.lines())
        if step % 100 == 0:
            assert_same_contents(cache, model)

    assert_same_contents(cache, model)


def test_eviction_tie_break_first_inserted_wins():
    """Equal last_use: the earliest-inserted line must be the victim."""
    config = CacheConfig(size_bytes=2 * LINE * 1, ways=2, line_size=LINE)
    num_sets = config.num_sets
    cache = SetAssociativeCache(config, "dut")
    stride = num_sets * LINE  # same set for every line
    cache.insert(0 * stride, b"a" * LINE, now=5.0)
    cache.insert(1 * stride, b"b" * LINE, now=5.0)
    victim = cache.insert(2 * stride, b"c" * LINE, now=5.0)
    assert victim is not None and victim.addr == 0
    # Re-inserting a line moves it to the back of the tie-break order.
    cache.invalidate(1 * stride)
    cache.insert(1 * stride, b"b" * LINE, now=5.0)
    victim = cache.insert(3 * stride, b"d" * LINE, now=5.0)
    assert victim.addr == 2 * stride
