"""Shared fixtures: small, fast machine configurations."""

from __future__ import annotations

import pytest

from repro import Machine, PersistentMemory, Policy, SystemConfig
from repro.sim.config import (
    CacheConfig,
    CoreConfig,
    LoggingConfig,
    MemCtrlConfig,
    NVDimmConfig,
)


def tiny_system(**overrides) -> SystemConfig:
    """A miniature machine: 2 cores, 4 KB L1, 32 KB LLC, 4 MB NVRAM."""
    config = SystemConfig(
        num_cores=2,
        core=CoreConfig(),
        l1=CacheConfig(size_bytes=4 * 1024, ways=4, line_size=64, latency_ns=1.6),
        llc=CacheConfig(size_bytes=32 * 1024, ways=8, line_size=64, latency_ns=4.4),
        memctrl=MemCtrlConfig(),
        nvram=NVDimmConfig(size_bytes=4 * 1024 * 1024),
        logging=LoggingConfig(log_entries=128),
    )
    return config.scaled(**overrides) if overrides else config


@pytest.fixture
def system() -> SystemConfig:
    """Tiny validated system configuration."""
    return tiny_system()


@pytest.fixture
def machine(system) -> Machine:
    """Tiny machine under the full fwb design."""
    return Machine(system, Policy.FWB)


@pytest.fixture
def pm(machine) -> PersistentMemory:
    """Persistent-memory facade over the tiny fwb machine."""
    return PersistentMemory(machine)


def make_pm(policy: Policy, **overrides) -> PersistentMemory:
    """Fresh machine + facade under ``policy`` (helper for parametrised tests)."""
    return PersistentMemory(Machine(tiny_system(**overrides), policy))


def word(value: int) -> bytes:
    """Little-endian machine word."""
    return int(value).to_bytes(8, "little")
