"""Shared fixtures: small, fast machine configurations."""

from __future__ import annotations

import pytest

from repro import Machine, PersistentMemory, Policy, SystemConfig
from repro.sim.config import (
    CacheConfig,
    CoreConfig,
    LoggingConfig,
    MemCtrlConfig,
    NVDimmConfig,
)


def tiny_system(**overrides) -> SystemConfig:
    """A miniature machine: 2 cores, 4 KB L1, 32 KB LLC, 4 MB NVRAM."""
    config = SystemConfig(
        num_cores=2,
        core=CoreConfig(),
        l1=CacheConfig(size_bytes=4 * 1024, ways=4, line_size=64, latency_ns=1.6),
        llc=CacheConfig(size_bytes=32 * 1024, ways=8, line_size=64, latency_ns=4.4),
        memctrl=MemCtrlConfig(),
        nvram=NVDimmConfig(size_bytes=4 * 1024 * 1024),
        logging=LoggingConfig(log_entries=128),
    )
    return config.scaled(**overrides) if overrides else config


@pytest.fixture
def system() -> SystemConfig:
    """Tiny validated system configuration."""
    return tiny_system()


@pytest.fixture
def machine(system) -> Machine:
    """Tiny machine under the full fwb design."""
    return Machine(system, Policy.FWB)


@pytest.fixture
def pm(machine) -> PersistentMemory:
    """Persistent-memory facade over the tiny fwb machine."""
    return PersistentMemory(machine)


def make_pm(policy: Policy, **overrides) -> PersistentMemory:
    """Fresh machine + facade under ``policy`` (helper for parametrised tests)."""
    return PersistentMemory(Machine(tiny_system(**overrides), policy))


def word(value: int) -> bytes:
    """Little-endian machine word."""
    return int(value).to_bytes(8, "little")


# ----------------------------------------------------------------------
# Synthetic compiled traces (static verifier / race detector tests)
# ----------------------------------------------------------------------
def synthetic_thread(ops):
    """Build a :class:`~repro.sim.ctrace.CompiledThread` from an op DSL.

    ``ops`` is a sequence of tuples::

        ("begin",)                    tx_begin
        ("commit",)                   tx_commit
        ("write", (addr, len), ...)   one WRITE op with those pieces
        ("read", addr, size)
        ("free", addr, size)
        ("compute", n)
    """
    from repro.sim.ctrace import (
        K_COMPUTE,
        K_FREE,
        K_READ,
        K_TX_BEGIN,
        K_TX_COMMIT,
        K_WRITE,
        CompiledThread,
    )

    col = CompiledThread()

    def emit(kind, a=0, b=0):
        col.kinds.append(kind)
        col.a.append(a)
        col.b.append(b)

    for op in ops:
        tag = op[0]
        if tag == "begin":
            emit(K_TX_BEGIN)
        elif tag == "commit":
            emit(K_TX_COMMIT)
        elif tag == "write":
            first = len(col.piece_addr)
            for addr, length in op[1:]:
                col.piece_addr.append(addr)
                col.piece_len.append(length)
                col.piece_sym.append(0)
                col.piece_val.append(0)
            emit(K_WRITE, first, len(op) - 1)
        elif tag == "read":
            emit(K_READ, op[1], op[2])
        elif tag == "free":
            emit(K_FREE, op[1], op[2])
        elif tag == "compute":
            emit(K_COMPUTE, op[1])
        else:  # pragma: no cover - test-authoring error
            raise ValueError(f"unknown synthetic op {tag!r}")
    return col


def synthetic_trace(*thread_ops, txns_per_thread=1):
    """A :class:`~repro.sim.ctrace.CompiledTrace` from per-thread op DSLs."""
    from repro.sim.ctrace import CompiledTrace

    cols = [synthetic_thread(ops) for ops in thread_ops]
    return CompiledTrace(
        workload_key=("synthetic",),
        threads=len(cols),
        txns_per_thread=txns_per_thread,
        image_prefix=b"",
        image_size=0,
        heap_state=(0, {}),
        block_sizes=[],
        thread_cols=cols,
    )
