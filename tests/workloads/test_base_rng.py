"""Tests for the workload base (accessors) and RNG helpers."""

import pytest

from repro import Policy
from repro.workloads.base import SetupAccessor, Workload
from repro.workloads.rng import ZipfGenerator, thread_rng
from tests.conftest import make_pm


class TestSetupAccessor:
    def test_read_write_roundtrip(self):
        pm = make_pm(Policy.NON_PERS)
        acc = SetupAccessor(pm)
        acc.write(0x2000, b"setup!")
        assert acc.read(0x2000, 6) == b"setup!"
        assert pm.machine.stats.instructions == 0  # untimed

    def test_compute_is_noop(self):
        pm = make_pm(Policy.NON_PERS)
        SetupAccessor(pm).compute(1000)
        assert pm.machine.stats.instructions == 0

    def test_transaction_context_is_noop(self):
        pm = make_pm(Policy.NON_PERS)
        acc = SetupAccessor(pm)
        with acc.transaction() as inner:
            assert inner is acc

    def test_alloc_free(self):
        pm = make_pm(Policy.NON_PERS)
        acc = SetupAccessor(pm)
        addr = acc.alloc(32)
        acc.free(addr, 32)
        assert acc.alloc(32) == addr


class TestWorkloadBase:
    def test_value_kind_validation(self):
        with pytest.raises(ValueError):
            from repro.workloads.hashtable import HashTableWorkload

            HashTableWorkload(value_kind="float")

    def test_value_sizes(self):
        from repro.workloads.hashtable import HashTableWorkload

        assert HashTableWorkload(value_kind="int").value_size == 8
        assert HashTableWorkload(value_kind="string").value_size == 96

    def test_word_helpers(self):
        pm = make_pm(Policy.NON_PERS)
        acc = SetupAccessor(pm)
        Workload.write_word(acc, 0x2000, 0xDEADBEEF)
        assert Workload.read_word(acc, 0x2000) == 0xDEADBEEF


class TestThreadRng:
    def test_deterministic(self):
        assert thread_rng(7, 1).random() == thread_rng(7, 1).random()

    def test_threads_decorrelated(self):
        a = [thread_rng(7, 0).randrange(100) for _ in range(5)]
        b = [thread_rng(7, 1).randrange(100) for _ in range(5)]
        assert a != b

    def test_seeds_decorrelated(self):
        assert thread_rng(1, 0).random() != thread_rng(2, 0).random()


class TestZipf:
    def test_in_range(self):
        zipf = ZipfGenerator(100, rng=thread_rng(1, 0))
        for _ in range(500):
            assert 0 <= zipf.next() < 100

    def test_skew_toward_zero(self):
        zipf = ZipfGenerator(100, theta=0.99, rng=thread_rng(1, 0))
        draws = [zipf.next() for _ in range(3000)]
        head = sum(1 for d in draws if d < 10)
        tail = sum(1 for d in draws if d >= 90)
        assert head > 4 * tail

    def test_higher_theta_more_skew(self):
        mild = ZipfGenerator(100, theta=0.5, rng=thread_rng(1, 0))
        steep = ZipfGenerator(100, theta=1.3, rng=thread_rng(1, 0))
        mild_head = sum(1 for _ in range(2000) if mild.next() == 0)
        steep_head = sum(1 for _ in range(2000) if steep.next() == 0)
        assert steep_head > mild_head

    def test_rejects_empty_population(self):
        with pytest.raises(ValueError):
            ZipfGenerator(0)
