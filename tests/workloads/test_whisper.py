"""Tests for the WHISPER-like kernels and their shared primitives."""

import random

import pytest

from repro import Policy
from repro.workloads.base import SetupAccessor
from repro.workloads.whisper import WHISPER_KERNELS, make_whisper_kernel
from repro.workloads.whisper.base import AppendLog, LRUList, ProbingTable
from repro.workloads.whisper.ctree import CTreeKernel
from repro.workloads.whisper.memcached_w import MemcachedKernel
from repro.workloads.whisper.tpcc import TPCCKernel
from tests.conftest import make_pm


class TestRegistry:
    def test_ten_kernels(self):
        assert len(WHISPER_KERNELS) == 10

    def test_make_by_name(self):
        kernel = make_whisper_kernel("ycsb", keys_per_partition=32)
        assert kernel.name == "ycsb"

    def test_unknown_name(self):
        with pytest.raises(KeyError):
            make_whisper_kernel("mongodb")


@pytest.mark.parametrize("name", sorted(WHISPER_KERNELS), ids=str)
class TestAllKernelsRun:
    def test_runs_under_fwb(self, name):
        small = {
            "ctree": dict(keys_per_partition=64),
            "hashmap": dict(keys_per_partition=64),
            "echo": dict(keys_per_partition=64),
            "exim": dict(spool_slots=64),
            "memcached": dict(keys_per_partition=64),
            "nfs": dict(files_per_partition=64),
            "redis": dict(keys_per_partition=64),
            "tpcc": dict(items_per_partition=64),
            "vacation": dict(records_per_table=64),
            "ycsb": dict(keys_per_partition=64),
        }
        pm = make_pm(Policy.FWB)
        kernel = make_whisper_kernel(name, seed=2, **small[name])
        kernel.setup(pm)
        api = pm.api(0)
        for _ in kernel.thread_body(api, 0, 15):
            pass
        stats = pm.machine.finalize()
        assert stats.transactions_committed == 15
        assert stats.log_records > 0  # every kernel persists something


SMALL_KW = {
    "ctree": dict(keys_per_partition=64),
    "hashmap": dict(keys_per_partition=64),
    "echo": dict(keys_per_partition=64),
    "exim": dict(spool_slots=64),
    "memcached": dict(keys_per_partition=64),
    "nfs": dict(files_per_partition=64),
    "redis": dict(keys_per_partition=64),
    "tpcc": dict(items_per_partition=64),
    "vacation": dict(records_per_table=64),
    "ycsb": dict(keys_per_partition=64),
}


@pytest.mark.parametrize("name", sorted(WHISPER_KERNELS), ids=str)
class TestTraceCompilableContract:
    """Every WHISPER kernel honours the trace-compilable audit.

    The contract behind the flag: partitioned by ``tid % MAX_PARTITIONS``,
    deterministic per ``(seed, tid)``, accessor-only persistent state, and
    volatile run state reset by :meth:`Workload.reset_run_state` — so a
    prepared instance replays identically and the compiled trace is
    bit-equivalent to interpretation.
    """

    def _prepared(self, name):
        from repro.harness.runner import prepare_workload
        from tests.conftest import tiny_system

        kernel = make_whisper_kernel(name, seed=2, **SMALL_KW[name])
        return prepare_workload(kernel, tiny_system())

    def test_flagged_compilable(self, name):
        assert make_whisper_kernel(name, **SMALL_KW[name]).trace_compilable

    def test_rerun_is_deterministic(self, name):
        """Two interpreted runs of the same prepared instance must agree
        — this is exactly what stale AppendLog cursors used to break."""
        import dataclasses

        from repro.core.design import DESIGNS
        from repro.harness.runner import RunConfig, run_workload

        prepared = self._prepared(name)
        config = RunConfig(
            policy=DESIGNS.resolve("hwl"),
            threads=2,
            txns_per_thread=8,
            system=prepared.system,
        )
        first = run_workload(prepared.workload, config, prepared=prepared)
        second = run_workload(prepared.workload, config, prepared=prepared)
        assert dataclasses.asdict(first.stats) == dataclasses.asdict(
            second.stats
        )

    def test_compiled_replay_matches_interpretation(self, name):
        import dataclasses

        from repro.core.design import DESIGNS
        from repro.harness.runner import RunConfig, run_workload
        from repro.sim.replay import compile_trace, run_compiled

        prepared = self._prepared(name)
        trace = compile_trace(prepared, 2, 8)
        config = RunConfig(
            policy=DESIGNS.resolve("hwl"),
            threads=2,
            txns_per_thread=8,
            system=prepared.system,
        )
        interpreted = run_workload(prepared.workload, config, prepared=prepared)
        replayed = run_compiled(trace, config)
        assert dataclasses.asdict(interpreted.stats) == dataclasses.asdict(
            replayed.stats
        )


class TestProbingTable:
    @pytest.fixture
    def table_env(self):
        pm = make_pm(Policy.NON_PERS)
        kernel = make_whisper_kernel("ycsb", keys_per_partition=16)
        kernel.setup(pm)
        return kernel.table, SetupAccessor(pm)

    def test_get_after_setup(self, table_env):
        table, acc = table_env
        assert table.get(acc, 0, 1) != b""

    def test_put_updates(self, table_env):
        table, acc = table_env
        table.put(acc, 0, 1, b"X" * 8)
        assert table.get(acc, 0, 1) == b"X" * 8

    def test_get_missing(self, table_env):
        table, acc = table_env
        assert table.get(acc, 0, 999) == b""

    def test_remove(self, table_env):
        table, acc = table_env
        assert table.remove(acc, 0, 1)
        assert table.get(acc, 0, 1) == b""
        assert not table.remove(acc, 0, 1)

    def test_probing_handles_collisions(self, table_env):
        table, acc = table_env
        rng = random.Random(4)
        values = {}
        for key in range(1, 17):
            value = bytes([rng.randrange(256)]) * 8
            table.put(acc, 0, key, value)
            values[key] = value
        for key, value in values.items():
            assert table.get(acc, 0, key) == value


class TestLRUList:
    @pytest.fixture
    def lru_env(self):
        pm = make_pm(Policy.NON_PERS)
        kernel = MemcachedKernel(seed=2, keys_per_partition=8)
        kernel.setup(pm)
        return kernel.lru, SetupAccessor(pm)

    def test_initial_chain(self, lru_env):
        lru, acc = lru_env
        assert lru.chain_tags(acc, 0) == list(range(8))

    def test_move_to_front(self, lru_env):
        lru, acc = lru_env
        lru.move_to_front(acc, 0, 5)
        assert lru.head_tag(acc, 0) == 5
        assert sorted(lru.chain_tags(acc, 0)) == list(range(8))

    def test_move_head_is_noop(self, lru_env):
        lru, acc = lru_env
        lru.move_to_front(acc, 0, 0)
        assert lru.chain_tags(acc, 0) == list(range(8))

    def test_move_tail(self, lru_env):
        lru, acc = lru_env
        lru.move_to_front(acc, 0, 7)
        tags = lru.chain_tags(acc, 0)
        assert tags[0] == 7 and len(tags) == 8


class TestTPCC:
    def test_stock_conserves_units(self):
        pm = make_pm(Policy.NON_PERS)
        kernel = TPCCKernel(seed=2, items_per_partition=32)
        kernel.setup(pm)
        acc = SetupAccessor(pm)
        api = pm.api(0)
        for _ in kernel.thread_body(api, 0, 10):
            pass
        pm.machine.hierarchy.flush_all(api.now)
        for item in range(32):
            quantity, ytd = kernel.stock_state(acc, 0, item)
            assert quantity > 0
        total_ytd = sum(kernel.stock_state(acc, 0, i)[1] for i in range(32))
        assert total_ytd > 0  # order lines recorded

    def test_write_intensity_exceeds_vacation(self):
        """tpcc writes far more persistent data per txn than vacation
        (the contrast Figure 10 builds on)."""

        def log_records(name, **kw):
            pm = make_pm(Policy.FWB)
            kernel = make_whisper_kernel(name, seed=2, **kw)
            kernel.setup(pm)
            api = pm.api(0)
            for _ in kernel.thread_body(api, 0, 10):
                pass
            return pm.machine.stats.log_records

        assert log_records("tpcc", items_per_partition=64) > 2 * log_records(
            "vacation", records_per_table=64
        )


class TestCTree:
    def test_matches_set_model(self):
        pm = make_pm(Policy.NON_PERS)
        kernel = CTreeKernel(seed=2, keys_per_partition=32)
        kernel.setup(pm)
        acc = SetupAccessor(pm)
        rng = random.Random(8)
        model = set(kernel._resident[0])
        for _ in range(200):
            key = rng.randrange(1, 33)
            if key in model:
                assert kernel.remove(acc, 0, key)
                model.discard(key)
            else:
                assert kernel.insert(acc, 0, key, 1)
                model.add(key)
        for key in range(1, 33):
            assert kernel.contains(acc, 0, key) == (key in model)
