"""Tests for the red-black tree microbenchmark."""

import random

import pytest

from repro import Policy
from repro.workloads.base import SetupAccessor
from repro.workloads.rbtree import RBTreeWorkload
from tests.conftest import make_pm


@pytest.fixture
def env():
    pm = make_pm(Policy.NON_PERS)
    workload = RBTreeWorkload(seed=5, keys_per_partition=64)
    workload.setup(pm)
    return pm, workload, SetupAccessor(pm)


class TestStructure:
    def test_setup_invariants(self, env):
        _pm, w, acc = env
        w.check_invariants(acc, 0)
        assert len(w.inorder_keys(acc, 0)) == 32

    def test_inorder_sorted(self, env):
        _pm, w, acc = env
        keys = w.inorder_keys(acc, 0)
        assert keys == sorted(keys)

    def test_insert_duplicate_returns_false(self, env):
        _pm, w, acc = env
        key = w.inorder_keys(acc, 0)[0]
        assert w.insert(acc, 0, key, b"x" * 8) is False

    def test_delete_missing_returns_false(self, env):
        _pm, w, acc = env
        missing = next(k for k in range(64) if w.find(acc, 0, k) == 0)
        assert w.delete(acc, 0, missing) is False

    def test_insert_then_find(self, env):
        _pm, w, acc = env
        missing = next(k for k in range(64) if w.find(acc, 0, k) == 0)
        assert w.insert(acc, 0, missing, b"v" * 8)
        assert w.find(acc, 0, missing) != 0
        w.check_invariants(acc, 0)

    def test_randomized_insert_delete_matches_set(self, env):
        """Fuzz against a Python set; invariants hold at every step."""
        _pm, w, acc = env
        rng = random.Random(99)
        model = set(w.inorder_keys(acc, 0))
        for step in range(300):
            key = rng.randrange(64)
            if key in model:
                assert w.delete(acc, 0, key)
                model.discard(key)
            else:
                assert w.insert(acc, 0, key, b"v" * 8)
                model.add(key)
            if step % 25 == 0:
                w.check_invariants(acc, 0)
                assert w.inorder_keys(acc, 0) == sorted(model)
        w.check_invariants(acc, 0)
        assert w.inorder_keys(acc, 0) == sorted(model)

    def test_drain_to_empty(self, env):
        _pm, w, acc = env
        for key in list(w.inorder_keys(acc, 0)):
            assert w.delete(acc, 0, key)
        assert w.inorder_keys(acc, 0) == []
        assert w.check_invariants(acc, 0) == 0

    def test_fill_completely(self, env):
        _pm, w, acc = env
        for key in range(64):
            w.insert(acc, 0, key, b"v" * 8)
        assert w.inorder_keys(acc, 0) == list(range(64))
        w.check_invariants(acc, 0)


class TestThreadBody:
    def test_runs_transactions(self, env):
        pm, w, _acc = env
        api = pm.api(0)
        for _ in w.thread_body(api, 0, 20):
            pass
        assert pm.machine.stats.transactions_committed == 20

    def test_invariants_after_timed_run(self, env):
        pm, w, acc = env
        api = pm.api(0)
        for _ in w.thread_body(api, 0, 50):
            pass
        w.check_invariants(acc, 0)
