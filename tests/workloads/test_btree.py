"""Tests for the B+ tree microbenchmark."""

import random

import pytest

from repro import Policy
from repro.workloads.base import SetupAccessor
from repro.workloads.btree import BTreeWorkload
from tests.conftest import make_pm


@pytest.fixture
def env():
    pm = make_pm(Policy.NON_PERS)
    workload = BTreeWorkload(seed=7, keys_per_partition=128)
    workload.setup(pm)
    return pm, workload, SetupAccessor(pm)


class TestStructure:
    def test_setup_invariants(self, env):
        _pm, w, acc = env
        w.check_invariants(acc, 0)
        assert len(w.all_keys(acc, 0)) == 64

    def test_lookup_present(self, env):
        _pm, w, acc = env
        key = w.all_keys(acc, 0)[5]
        assert w.lookup(acc, 0, key) != b""

    def test_lookup_absent(self, env):
        _pm, w, acc = env
        present = set(w.all_keys(acc, 0))
        missing = next(k for k in range(128) if k not in present)
        assert w.lookup(acc, 0, missing) == b""

    def test_insert_duplicate_returns_false(self, env):
        _pm, w, acc = env
        key = w.all_keys(acc, 0)[0]
        assert w.insert(acc, 0, key, b"v" * 8) is False

    def test_delete_missing_returns_false(self, env):
        _pm, w, acc = env
        present = set(w.all_keys(acc, 0))
        missing = next(k for k in range(128) if k not in present)
        assert w.delete(acc, 0, missing) is False

    def test_splits_on_fill(self, env):
        _pm, w, acc = env
        for key in range(128):
            w.insert(acc, 0, key, b"v" * 8)
        assert w.all_keys(acc, 0) == list(range(128))
        w.check_invariants(acc, 0)

    def test_merges_on_drain(self, env):
        _pm, w, acc = env
        for key in list(w.all_keys(acc, 0)):
            assert w.delete(acc, 0, key)
        assert w.all_keys(acc, 0) == []

    def test_randomized_against_set(self, env):
        _pm, w, acc = env
        rng = random.Random(1234)
        model = set(w.all_keys(acc, 0))
        for step in range(400):
            key = rng.randrange(128)
            if key in model:
                assert w.delete(acc, 0, key)
                model.discard(key)
            else:
                assert w.insert(acc, 0, key, b"v" * 8)
                model.add(key)
            if step % 40 == 0:
                assert w.all_keys(acc, 0) == sorted(model)
                w.check_invariants(acc, 0)
        assert w.all_keys(acc, 0) == sorted(model)
        w.check_invariants(acc, 0)

    def test_values_preserved_across_rebalancing(self, env):
        _pm, w, acc = env
        for key in list(w.all_keys(acc, 0)):
            w.delete(acc, 0, key)
        for key in range(128):
            w.insert(acc, 0, key, bytes([key]) * 8)
        for key in range(0, 128, 2):
            w.delete(acc, 0, key)
        for key in range(1, 128, 2):
            assert w.lookup(acc, 0, key) == bytes([key]) * 8

    def test_partitions_independent(self, env):
        _pm, w, acc = env
        before = w.all_keys(acc, 1)
        for key in range(128):
            w.insert(acc, 0, key, b"v" * 8)
        assert w.all_keys(acc, 1) == before


class TestThreadBody:
    def test_runs_transactions(self, env):
        pm, w, acc = env
        api = pm.api(0)
        for _ in w.thread_body(api, 0, 30):
            pass
        assert pm.machine.stats.transactions_committed == 30
        w.check_invariants(acc, 0)
