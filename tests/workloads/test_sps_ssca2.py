"""Tests for the SPS and SSCA2 microbenchmarks."""

import pytest

from repro import Policy
from repro.workloads.base import SetupAccessor
from repro.workloads.sps import SPSWorkload
from repro.workloads.ssca2 import SSCA2Workload
from tests.conftest import make_pm


@pytest.fixture
def sps_env():
    pm = make_pm(Policy.NON_PERS)
    workload = SPSWorkload(seed=11, entries_per_partition=64)
    workload.setup(pm)
    return pm, workload, SetupAccessor(pm)


class TestSPS:
    def test_setup_fills_vector(self, sps_env):
        _pm, w, acc = sps_env
        values = [acc.read(w.entry_addr(0, i), w.entry_size) for i in range(64)]
        assert all(v != bytes(w.entry_size) or i == 0 for i, v in enumerate(values))

    def test_swaps_preserve_multiset(self, sps_env):
        pm, w, acc = sps_env
        before = sorted(
            acc.read(w.entry_addr(0, i), w.entry_size) for i in range(64)
        )
        api = pm.api(0)
        for _ in w.thread_body(api, 0, 50):
            pass
        pm.machine.hierarchy.flush_all(api.now)
        after = sorted(
            acc.read(w.entry_addr(0, i), w.entry_size) for i in range(64)
        )
        assert before == after

    def test_swaps_actually_move_values(self, sps_env):
        pm, w, acc = sps_env
        before = [acc.read(w.entry_addr(0, i), w.entry_size) for i in range(64)]
        api = pm.api(0)
        for _ in w.thread_body(api, 0, 20):
            pass
        pm.machine.hierarchy.flush_all(api.now)
        after = [acc.read(w.entry_addr(0, i), w.entry_size) for i in range(64)]
        assert before != after

    def test_two_writes_per_transaction(self, sps_env):
        pm, w, _acc = sps_env
        api = pm.api(0)
        for _ in w.thread_body(api, 0, 10):
            pass
        assert pm.machine.stats.transactions_committed == 10

    def test_string_default_entries_scale_down(self):
        assert SPSWorkload(value_kind="string").entries_per_partition < (
            SPSWorkload(value_kind="int").entries_per_partition
        )


@pytest.fixture
def graph_env():
    pm = make_pm(Policy.NON_PERS)
    workload = SSCA2Workload(
        seed=13, vertices_per_partition=32, initial_edges_per_vertex=2
    )
    workload.setup(pm)
    return pm, workload, SetupAccessor(pm)


class TestSSCA2:
    def test_setup_builds_graph(self, graph_env):
        _pm, w, acc = graph_env
        total_edges = sum(len(w.adjacency(acc, 0, v)) for v in range(32))
        assert total_edges == 32 * 2

    def test_degree_counter_matches_list(self, graph_env):
        _pm, w, acc = graph_env
        for v in range(32):
            assert w.degree_of(acc, 0, v) == len(w.adjacency(acc, 0, v))

    def test_insert_edge_prepends(self, graph_env):
        _pm, w, acc = graph_env
        w._insert_edge(acc, 0, 3, 7, 555)
        assert w.adjacency(acc, 0, 3)[0] == (7, 555)

    def test_classify_persists_max_weight(self, graph_env):
        _pm, w, acc = graph_env
        w._insert_edge(acc, 0, 5, 1, 99999)
        w._classify_edges(acc, 0, 5)
        metric = w.read_word(acc, w._vertex_addr(0, 5) + 16)
        assert metric == 99999

    def test_scale_free_bias(self, graph_env):
        _pm, w, _acc = graph_env
        from repro.workloads.rng import thread_rng

        rng = thread_rng(1, 1)
        picks = [w._pick_vertex(rng) for _ in range(2000)]
        low = sum(1 for p in picks if p < 8)
        high = sum(1 for p in picks if p >= 24)
        assert low > 2 * high  # hubs at low ids

    def test_thread_body_grows_graph(self, graph_env):
        pm, w, acc = graph_env
        before = sum(w.degree_of(acc, 0, v) for v in range(32))
        api = pm.api(0)
        for _ in w.thread_body(api, 0, 40):
            pass
        pm.machine.hierarchy.flush_all(api.now)
        after = sum(w.degree_of(acc, 0, v) for v in range(32))
        assert after > before
        assert pm.machine.stats.transactions_committed == 40
