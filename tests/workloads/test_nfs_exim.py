"""Behavioural tests for the nfs and exim WHISPER-like kernels."""

import pytest

from repro import Policy
from repro.workloads.base import SetupAccessor
from repro.workloads.whisper.exim_w import EximKernel
from repro.workloads.whisper.nfs_w import NFSKernel
from tests.conftest import make_pm


class TestNFS:
    @pytest.fixture
    def env(self):
        pm = make_pm(Policy.FWB)
        kernel = NFSKernel(seed=5, files_per_partition=32)
        kernel.setup(pm)
        return pm, kernel

    def test_setup_creates_files(self, env):
        pm, kernel = env
        acc = SetupAccessor(pm)
        raw = kernel._directory.get(acc, 0, 1)
        assert raw != b""

    def test_block_writes_grow_inodes(self, env):
        pm, kernel = env
        api = pm.api(0)
        for _ in kernel.thread_body(api, 0, 60):
            pass
        pm.machine.hierarchy.flush_all(api.now)
        acc = SetupAccessor(pm)
        grew = sum(
            1
            for inode in range(32)
            if kernel.inode_state(acc, 0, inode)[1] > 0
        )
        assert grew > 0
        # size and block count stay consistent (size = blocks * 256 + base)
        for inode in range(32):
            size, blocks = kernel.inode_state(acc, 0, inode)
            if blocks:
                assert size >= blocks * 256

    def test_transactions_commit(self, env):
        pm, kernel = env
        api = pm.api(0)
        for _ in kernel.thread_body(api, 0, 40):
            pass
        assert pm.machine.stats.transactions_committed == 40
        assert pm.machine.stats.log_records > 0


class TestExim:
    @pytest.fixture
    def env(self):
        pm = make_pm(Policy.FWB)
        kernel = EximKernel(seed=5, spool_slots=64)
        kernel.setup(pm)
        return pm, kernel

    def test_deliveries_counted(self, env):
        pm, kernel = env
        api = pm.api(0)
        for _ in kernel.thread_body(api, 0, 80):
            pass
        pm.machine.hierarchy.flush_all(api.now)
        acc = SetupAccessor(pm)
        delivered = kernel.delivered_count(acc, 0)
        assert delivered > 0

    def test_spool_occupancy_bounded(self, env):
        pm, kernel = env
        api = pm.api(0)
        for _ in kernel.thread_body(api, 0, 120):
            pass
        pm.machine.hierarchy.flush_all(api.now)
        acc = SetupAccessor(pm)
        live = sum(
            1
            for message in range(1, 200)
            if kernel.index.get(acc, 0, message) != b""
        )
        assert live <= 65  # accepts minus deliveries, bounded by design

    def test_accepts_write_more_than_deliveries(self, env):
        """Accept transactions append 2-6 body chunks; deliveries only
        touch the index + counter — visible in the log record rate."""
        pm, kernel = env
        api = pm.api(0)
        for _ in kernel.thread_body(api, 0, 50):
            pass
        records_per_txn = pm.machine.stats.log_records / 50
        assert records_per_txn > 4  # dominated by the multi-chunk accepts
