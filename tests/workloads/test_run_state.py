"""The volatile run-state checkpoint contract, over all ten kernels.

``Workload.run_state()`` / ``restore_run_state()`` is what lets many
shards share one workload instance while being stepped in interleaved
windows: anything host-side a thread body mutates (append cursors,
inode rotors) is checkpointed per shard and swapped in around every
step.  These tests pin the contract for every WHISPER kernel:

* ``restore_run_state(run_state())`` is an identity;
* ``reset_run_state()`` followed by ``run_state()`` reproduces the
  baseline checkpoint;
* interleaving two machines over one shared instance — stepping each in
  small alternating windows with the checkpoint swap — leaves both
  bit-identical to an uninterrupted solo run (the per-request isolation
  guarantee behind ``repro serve``).
"""

import dataclasses

import pytest

from repro.core.design import DESIGNS
from repro.errors import WorkloadError
from repro.harness.runner import (
    RunConfig,
    prepare_workload,
    run_workload_monolithic,
)
from repro.sched.shard import ShardMachine
from repro.sim.machine import Machine
from repro.txn.runtime import PersistentMemory
from repro.workloads.whisper import WHISPER_KERNELS, make_whisper_kernel
from tests.conftest import tiny_system

FWB = DESIGNS.resolve("fwb")
TXNS = 6

SMALL_KW = {
    "ctree": dict(keys_per_partition=64),
    "hashmap": dict(keys_per_partition=64),
    "echo": dict(keys_per_partition=64),
    "exim": dict(spool_slots=64),
    "memcached": dict(keys_per_partition=64),
    "nfs": dict(files_per_partition=64),
    "redis": dict(keys_per_partition=64),
    "tpcc": dict(items_per_partition=64),
    "vacation": dict(records_per_table=64),
    "ycsb": dict(keys_per_partition=64),
}

#: Kernels whose thread bodies mutate host-side state between yields —
#: the ones a broken checkpoint swap would actually corrupt.
STATEFUL = ("echo", "exim", "nfs", "redis", "tpcc", "vacation")


@pytest.fixture(scope="module", params=sorted(WHISPER_KERNELS), ids=str)
def prepared(request):
    kernel = make_whisper_kernel(request.param, seed=2, **SMALL_KW[request.param])
    return prepare_workload(kernel, tiny_system())


def test_restore_of_own_checkpoint_is_identity(prepared):
    workload = prepared.workload
    workload.reset_run_state()
    baseline = workload.run_state()
    workload.restore_run_state(baseline)
    assert workload.run_state() == baseline


def test_reset_reproduces_the_baseline_checkpoint(prepared):
    workload = prepared.workload
    workload.reset_run_state()
    baseline = workload.run_state()
    # Dirty the volatile state by running a few transactions...
    run = RunConfig(
        policy=FWB, threads=1, txns_per_thread=TXNS, system=prepared.system
    )
    outcome = run_workload_monolithic(workload, run, prepared=prepared)
    outcome.machine.nvram.recycle()
    # ...then reset must land back on the same checkpoint.
    workload.reset_run_state()
    assert workload.run_state() == baseline


def test_stateful_kernels_expose_nonempty_checkpoints():
    for name in STATEFUL:
        kernel = make_whisper_kernel(name, seed=2, **SMALL_KW[name])
        kernel.reset_run_state()
        assert kernel.run_state() != (), name


def test_stateless_kernels_reject_foreign_checkpoints():
    kernel = make_whisper_kernel("ctree", seed=2, **SMALL_KW["ctree"])
    assert kernel.run_state() == ()
    kernel.restore_run_state(())  # identity is fine
    with pytest.raises(WorkloadError):
        kernel.restore_run_state(("bogus",))


def _shard_for(prepared, threads):
    machine = Machine(prepared.system, FWB)
    pm = PersistentMemory(machine)
    prepared.restore_into(machine)
    pm.heap.restore(prepared.heap_state)
    workload = prepared.workload
    workload.attach(pm)
    workload.reset_run_state()
    return ShardMachine(machine, pm, workload, threads=threads)


def test_interleaved_stepping_matches_solo_runs(prepared):
    """The per-request checkpoint guarantee: two machines sharing this
    kernel instance, stepped in alternating 90-cycle windows, each end
    with exactly the stats of an uninterrupted run."""
    run = RunConfig(
        policy=FWB, threads=2, txns_per_thread=TXNS, system=prepared.system
    )
    solo = run_workload_monolithic(prepared.workload, run, prepared=prepared)
    reference = dataclasses.asdict(solo.stats)
    solo.machine.nvram.recycle()

    shard_a = _shard_for(prepared, threads=2)
    shard_b = _shard_for(prepared, threads=2)
    shard_a.start_batch(TXNS)
    shard_b.start_batch(TXNS)
    horizon = 0.0
    while not (shard_a.done and shard_b.done):
        horizon += 90.0
        shard_a.step(horizon)
        shard_b.step(horizon)
    try:
        assert dataclasses.asdict(shard_a.machine.finalize()) == reference
        assert dataclasses.asdict(shard_b.machine.finalize()) == reference
    finally:
        shard_a.machine.nvram.recycle()
        shard_b.machine.nvram.recycle()
