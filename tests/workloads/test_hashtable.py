"""Tests for the hash microbenchmark (structure correctness + trace)."""

import pytest

from repro import Policy
from repro.workloads.base import SetupAccessor
from repro.workloads.hashtable import HashTableWorkload
from tests.conftest import make_pm


@pytest.fixture
def env():
    pm = make_pm(Policy.NON_PERS)
    workload = HashTableWorkload(
        seed=3, buckets_per_partition=8, keys_per_partition=64
    )
    workload.setup(pm)
    return pm, workload, SetupAccessor(pm)


class TestStructure:
    def test_setup_populates_half(self, env):
        _pm, w, acc = env
        present = sum(1 for k in range(64) if w.lookup(acc, 0, k) != b"")
        assert present == 32

    def test_insert_then_lookup(self, env):
        _pm, w, acc = env
        missing = next(k for k in range(64) if w.lookup(acc, 0, k) == b"")
        w._insert(acc, 0, missing, b"VALUE!!!")
        assert w.lookup(acc, 0, missing) == b"VALUE!!!"

    def test_remove_unlinks(self, env):
        _pm, w, acc = env
        present = next(k for k in range(64) if w.lookup(acc, 0, k) != b"")
        w._remove(acc, 0, present)
        assert w.lookup(acc, 0, present) == b""

    def test_chain_collisions_preserved(self, env):
        _pm, w, acc = env
        # Insert several keys into the same bucket.
        bucket_addr = w._bucket_addr(0, 0)
        same_bucket = [
            k for k in range(64) if w._bucket_addr(0, k) == bucket_addr
        ][:3]
        for k in same_bucket:
            if w.lookup(acc, 0, k) == b"":
                w._insert(acc, 0, k, bytes([k] * 8))
        for k in same_bucket:
            assert w.lookup(acc, 0, k) != b""

    def test_partitions_independent(self, env):
        _pm, w, acc = env
        key = next(k for k in range(64) if w.lookup(acc, 1, k) == b"")
        w._insert(acc, 1, key, b"PART1!!!")
        assert w.lookup(acc, 1, key) == b"PART1!!!"

    def test_string_variant_value_size(self):
        w = HashTableWorkload(value_kind="string")
        assert w.value_size == 96
        assert w.node_size == 112


class TestThreadBody:
    def test_runs_and_matches_model(self, env):
        pm, w, acc = env
        api = pm.api(0)
        model = set(w._resident[0])
        steps = 0
        for _ in w.thread_body(api, 0, 30):
            steps += 1
        assert steps == 30
        assert pm.machine.stats.transactions_committed == 30

    def test_structure_consistent_after_run(self, env):
        pm, w, acc = env
        api = pm.api(0)
        for _ in w.thread_body(api, 0, 40):
            pass
        pm.machine.hierarchy.flush_all(api.now)
        # Replay the same RNG stream to predict final membership.
        from repro.workloads.rng import thread_rng

        rng = thread_rng(w.seed, 0)
        resident = set(w._resident[0])
        for _ in range(40):
            key = rng.randrange(w.keys_per_partition)
            if key in resident:
                resident.discard(key)
            else:
                resident.add(key)
        for key in range(w.keys_per_partition):
            stored = w.lookup(acc, 0, key) != b""
            assert stored == (key in resident), key
