"""Convergent cluster recovery: the tentpole's acceptance semantics.

Every test here follows the same shape as the campaign points, but with
hand-picked inputs so each failure mode (damaged source, interrupted
source, ineligible cluster) is pinned individually.
"""

from __future__ import annotations

from repro.dist import (
    ShipTimeline,
    build_replicas,
    expected_image,
    recover_cluster,
    required_frontier,
)


def _cluster(traced_hash, dist_config, **timeline_kwargs):
    prepared, stream, golden = traced_hash
    timeline = ShipTimeline(stream, dist_config, **timeline_kwargs)
    nodes = build_replicas(prepared, stream, timeline)
    return prepared, stream, golden, timeline, nodes


def _release(nodes):
    for node in nodes:
        node.release()


# ----------------------------------------------------------------------
# The happy path
# ----------------------------------------------------------------------
def test_survivors_converge_to_the_golden_image(traced_hash, dist_config):
    prepared, stream, golden, timeline, nodes = _cluster(traced_hash, dist_config)
    try:
        report = recover_cluster(
            nodes, stream, timeline.cluster_committed,
            prepared=prepared, golden=golden,
        )
        assert report.converged, report.render()
        assert report.source == 1
        assert not report.fallbacks and not report.damaged
        assert report.mismatched_words == 0
        assert report.recovered_commits >= report.acked_commits > 0
    finally:
        _release(nodes)


def test_any_single_survivor_holds_every_acked_commit(traced_hash, dist_config):
    """Quorum = all replicas: each one alone must cover the acked
    frontier (the single-surviving-replica guarantee)."""
    prepared, stream, golden, timeline, nodes = _cluster(traced_hash, dist_config)
    try:
        needed = required_frontier(stream, timeline.cluster_committed)
        for node in nodes:
            assert node.scan_frontier() >= needed
        for lone in nodes:
            report = recover_cluster(
                [lone], stream, timeline.cluster_committed,
                prepared=prepared, golden=golden,
            )
            assert report.converged, (lone.node_id, report.render())
            # Each lone recovery must also land on the same image as the
            # full-cluster run for its own frontier's expected image —
            # which mismatched_words == 0 already proves.
            lone.truncate_to(0)
    finally:
        _release(nodes)


def test_mid_txn_crash_recovers_without_the_in_flight_txn(
    traced_hash, dist_config
):
    full_stream = traced_hash[1]
    mid = full_stream.records[len(full_stream.records) // 2].durable + 0.1
    prepared, stream, golden, timeline, nodes = _cluster(
        traced_hash, dist_config, primary_crash=mid
    )
    try:
        report = recover_cluster(
            nodes, stream, timeline.cluster_committed,
            prepared=prepared, golden=golden,
        )
        assert report.converged, report.render()
        assert report.acked_commits < len(stream.commit_map())
    finally:
        _release(nodes)


# ----------------------------------------------------------------------
# Damaged-replica fallback
# ----------------------------------------------------------------------
def test_damaged_preferred_replica_falls_back(traced_hash, dist_config):
    prepared, stream, golden, timeline, nodes = _cluster(traced_hash, dist_config)
    try:
        needed = required_frontier(stream, timeline.cluster_committed)
        nodes[0].corrupt_slot(needed - 2)
        report = recover_cluster(
            nodes, stream, timeline.cluster_committed,
            prepared=prepared, golden=golden,
        )
        assert report.converged, report.render()
        assert report.damaged == [1]
        assert report.source == 2
    finally:
        _release(nodes)


def test_every_replica_damaged_reports_failure(traced_hash, dist_config):
    prepared, stream, golden, timeline, nodes = _cluster(traced_hash, dist_config)
    try:
        needed = required_frontier(stream, timeline.cluster_committed)
        for node in nodes:
            node.corrupt_slot(needed - 2)
        report = recover_cluster(
            nodes, stream, timeline.cluster_committed,
            prepared=prepared, golden=golden,
        )
        assert not report.converged
        assert report.failure is not None
        assert "no survivor covers" in report.failure
    finally:
        _release(nodes)


# ----------------------------------------------------------------------
# Mid-recovery interruption
# ----------------------------------------------------------------------
def test_interrupted_source_restarts_idempotently(traced_hash, dist_config):
    prepared, stream, golden, timeline, nodes = _cluster(traced_hash, dist_config)
    try:
        report = recover_cluster(
            nodes, stream, timeline.cluster_committed,
            prepared=prepared, golden=golden,
            interrupt_source_at=5, fallback_on_interrupt=False,
        )
        assert report.converged, report.render()
        assert report.source == 1
        (first, _second) = report.per_replica
        assert first.interrupted and first.recovered and not first.abandoned
    finally:
        _release(nodes)


def test_interrupted_source_can_fall_back(traced_hash, dist_config):
    prepared, stream, golden, timeline, nodes = _cluster(traced_hash, dist_config)
    try:
        report = recover_cluster(
            nodes, stream, timeline.cluster_committed,
            prepared=prepared, golden=golden,
            interrupt_source_at=5, fallback_on_interrupt=True,
        )
        assert report.converged, report.render()
        assert report.fallbacks == [1]
        assert report.source == 2
        (first, second) = report.per_replica
        assert first.abandoned and not first.recovered
        assert second.recovered
    finally:
        _release(nodes)


# ----------------------------------------------------------------------
# expected_image is the ground truth it claims to be
# ----------------------------------------------------------------------
def test_expected_image_full_frontier_equals_golden_heap(traced_hash, dist_config):
    prepared, stream, golden, timeline, nodes = _cluster(traced_hash, dist_config)
    try:
        frontier = len(stream.records)
        image = expected_image(prepared, stream, golden, frontier)
        assert len(image) == prepared.image_size
        # Recover one replica and compare directly.
        node = nodes[0]
        node.recover(reset_log=False)
        assert node.heap_image() == image
    finally:
        _release(nodes)


def test_expected_image_is_monotone_in_the_frontier(traced_hash):
    prepared, stream, golden = traced_hash
    commit_seqs = sorted(s for s, *_ in stream.commit_map().values())
    prev = None
    for cut in (0, commit_seqs[len(commit_seqs) // 2] + 1, len(stream.records)):
        image = expected_image(prepared, stream, golden, cut)
        if prev is not None:
            assert image != prev or cut == 0
        prev = image
