"""Shared fixtures: one traced primary run feeds the whole suite.

The dist layer is a pure function of ``(stream, config, faults)``, so a
single traced hash run (module-scope would re-trace per file;
session-scope keeps the suite fast) backs every shipping / node /
recovery test.  Tests must not mutate the stream; replica nodes are
built fresh per test via :func:`repro.dist.build_replicas`.
"""

from __future__ import annotations

import pytest

from repro.core.design import DESIGNS
from repro.dist import DistConfig, traced_primary_run
from repro.faults.campaign import campaign_workload, default_campaign_system
from repro.harness.runner import prepare_workload

HWL = DESIGNS.resolve("hwl")

THREADS = 2
TXNS = 16


@pytest.fixture(scope="session")
def traced_hash():
    """``(prepared, stream, golden)`` for one deterministic hash run."""
    prepared = prepare_workload(
        campaign_workload("hash", 5), default_campaign_system()
    )
    stream, golden, outcome = traced_primary_run(
        prepared, HWL, threads=THREADS, txns_per_thread=TXNS
    )
    yield prepared, stream, golden
    outcome.machine.nvram.recycle()


@pytest.fixture(scope="session")
def dist_config():
    return DistConfig(nodes=3, replicas=2)
