"""Campaign grid, replication sanitizer, probe, and CLI plumbing."""

from __future__ import annotations

from repro.__main__ import build_parser
from repro.dist import (
    DistConfig,
    ShipTimeline,
    enumerate_dist_points,
    evaluate_point,
    run_dist_campaign,
)
from repro.sanitizer.replication import (
    REPLICATION_RULES,
    check_replication,
)


# ----------------------------------------------------------------------
# Grid enumeration
# ----------------------------------------------------------------------
def test_grid_covers_every_fault_family(traced_hash, dist_config):
    _prepared, stream, _golden = traced_hash
    points = enumerate_dist_points(stream, dist_config)
    labels = [point.label for point in points]
    assert len(labels) == len(set(labels)), "duplicate grid labels"
    families = {
        "primary-mid-txn[early]",
        "primary-mid-txn[late]",
        "primary-post-commit-record",
        "primary-mid-ship[mid]",
        "primary-after-quorum",
        "link-drop+retransmit",
        "link-dup",
        "link-delay-reorder",
        "link-torn-mid-ship",
        "replica-crash-mid-run",
        "torn-replica-fallback",
        "mid-recovery-restart",
        "mid-recovery-fallback",
    }
    assert families <= set(labels)


def test_grid_budget_subsamples_evenly(traced_hash, dist_config):
    _prepared, stream, _golden = traced_hash
    full = enumerate_dist_points(stream, dist_config)
    small = enumerate_dist_points(stream, dist_config, budget=5)
    assert len(small) == 5
    assert set(p.label for p in small) <= set(p.label for p in full)


def test_every_grid_point_converges(traced_hash, dist_config):
    """The acceptance loop on one benchmark: each point of the grid must
    converge with a clean sanitizer (fallback points must actually fall
    back)."""
    prepared, stream, golden = traced_hash
    for point in enumerate_dist_points(stream, dist_config):
        result = evaluate_point(prepared, stream, golden, dist_config, point)
        assert result.ok, f"{point.label}: {result.note}"


# ----------------------------------------------------------------------
# Replication sanitizer
# ----------------------------------------------------------------------
def test_guaranteed_timeline_is_psan_clean(traced_hash, dist_config):
    _prepared, stream, _golden = traced_hash
    report = check_replication(ShipTimeline(stream, dist_config))
    assert report.clean, [d.message for d in report.diagnostics]
    assert report.rules_checked == REPLICATION_RULES
    assert report.txns_checked == len(stream.commit_map())
    assert report.events_processed > 0


def test_ack_before_durable_probe_trips(traced_hash, dist_config):
    """The deliberate violation: acks sent at batch arrival, before the
    per-record append latency has elapsed.  The first rule must fire."""
    _prepared, stream, _golden = traced_hash
    timeline = ShipTimeline(stream, dist_config, unsafe_early_ack=True)
    report = check_replication(timeline)
    assert not report.clean
    assert "repl-ack-durable" in report.rules_fired()


def test_faulty_but_guaranteed_timelines_stay_clean(traced_hash, dist_config):
    """Link faults change the schedule, not the ordering contract: the
    sanitizer must stay quiet across the whole fault family."""
    from repro.dist import LinkFault

    _prepared, stream, _golden = traced_hash
    timeline = ShipTimeline(stream, dist_config)
    batches = len(timeline.batches)
    for fault in (
        LinkFault("drop", 1, batches // 3),
        LinkFault("dup", 1, batches // 2),
        LinkFault("delay", 1, batches // 2, delay=1500.0),
        LinkFault("torn", 1, (2 * batches) // 3, keep_records=1, keep_bytes=20),
    ):
        report = check_replication(
            ShipTimeline(stream, dist_config, faults=(fault,))
        )
        assert report.clean, (
            fault.kind,
            [d.message for d in report.diagnostics],
        )


# ----------------------------------------------------------------------
# End-to-end campaign driver
# ----------------------------------------------------------------------
def test_campaign_smoke_single_benchmark():
    result = run_dist_campaign(
        benchmarks=("hash",),
        config=DistConfig(nodes=3, replicas=2),
        threads=2,
        txns_per_thread=10,
        seed=7,
    )
    assert result.passed, result.render()
    assert result.probe_tripped is True
    (report,) = result.reports
    assert report.benchmark == "hash" and report.policy == "hwl"
    assert report.records > 0 and report.commits == 2 * 10
    rendered = result.render()
    assert "dist campaign PASSED" in rendered
    assert "tripped (expected)" in rendered


# ----------------------------------------------------------------------
# CLI plumbing
# ----------------------------------------------------------------------
def test_cli_dist_subcommand_parses():
    parser = build_parser()
    args = parser.parse_args(
        [
            "dist",
            "--nodes", "3",
            "--replicas", "2",
            "--benchmarks", "hash,sps",
            "--txns", "12",
            "--points", "6",
            "--no-probe",
        ]
    )
    assert args.nodes == 3 and args.replicas == 2
    assert args.benchmarks == "hash,sps"
    assert args.txns == 12 and args.points == 6
    assert args.no_probe is True
    assert args.command == "dist" and callable(args.fn)
