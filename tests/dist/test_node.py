"""Replica-node semantics: append discipline, damage, idempotent recovery.

These cover the per-node half of the satellite checklist directly:
double recovery on one node must be a fixed point (recovery writes
absolute values), and a re-shipped batch after a link fault must not
resurrect state an earlier recovery already rolled back.
"""

from __future__ import annotations

import pytest

from repro.dist import ShipTimeline, build_replicas
from repro.dist.node import ReplicaNode
from repro.errors import ConfigError


def _fresh_node(traced_hash, records=None):
    prepared, stream, _golden = traced_hash
    node = ReplicaNode(1, prepared.system, prepared.image_prefix,
                       max(1, len(stream.records)))
    for rec in (stream.records if records is None else records):
        node.append(rec)
    return node, stream


# ----------------------------------------------------------------------
# Append discipline
# ----------------------------------------------------------------------
def test_append_assigns_slot_equal_to_seq(traced_hash):
    node, stream = _fresh_node(traced_hash)
    try:
        assert node.appended == len(stream.records)
        assert node.scan_frontier() == len(stream.records)
    finally:
        node.release()


def test_duplicate_append_is_ignored(traced_hash):
    node, stream = _fresh_node(traced_hash)
    try:
        before = node.image_bytes()
        for rec in stream.records[:8]:
            assert node.append(rec) == rec.seq
        assert node.image_bytes() == before
        assert node.appended == len(stream.records)
    finally:
        node.release()


def test_out_of_order_append_is_rejected(traced_hash):
    prepared, stream, _golden = traced_hash
    node = ReplicaNode(1, prepared.system, prepared.image_prefix,
                       len(stream.records))
    try:
        node.append(stream.records[0])
        with pytest.raises(ConfigError):
            node.append(stream.records[2])
    finally:
        node.release()


def test_torn_tail_blocks_further_appends(traced_hash):
    prepared, stream, _golden = traced_hash
    node = ReplicaNode(1, prepared.system, prepared.image_prefix,
                       len(stream.records))
    try:
        # Tear a DATA record: its covered content (addr + undo + redo)
        # always exceeds 8 bytes, so the checksum cannot survive the
        # tear.  (A tear past a short record's covered extent loses only
        # padding — the record genuinely IS durable then.)
        torn_at = next(
            rec.seq for rec in stream.records if rec.kind == "DATA"
        )
        for rec in stream.records[:torn_at]:
            node.append(rec)
        node.append_torn(stream.records[torn_at], keep_bytes=8)
        assert node.scan_frontier() == torn_at
        with pytest.raises(ConfigError):
            node.append(stream.records[torn_at + 1])
    finally:
        node.release()


def test_corrupt_slot_lowers_the_scan_frontier(traced_hash):
    node, stream = _fresh_node(traced_hash)
    try:
        target = len(stream.records) // 2
        node.corrupt_slot(target)
        assert node.scan_frontier() == target
    finally:
        node.release()


def test_truncate_erases_the_tail(traced_hash):
    node, stream = _fresh_node(traced_hash)
    try:
        frontier = len(stream.records) // 2
        node.truncate_to(frontier)
        assert node.scan_frontier() == frontier
        assert node.appended == frontier
    finally:
        node.release()


# ----------------------------------------------------------------------
# Recovery idempotence (per node)
# ----------------------------------------------------------------------
def test_double_recovery_is_a_fixed_point(traced_hash, dist_config):
    """Recover twice on the same node: the second pass must change
    nothing (replay writes absolute values; undo restores committed
    values) — the restart-after-mid-recovery-crash guarantee."""
    prepared, stream, _golden = traced_hash
    timeline = ShipTimeline(stream, dist_config)
    nodes = build_replicas(prepared, stream, timeline)
    try:
        for node in nodes:
            first = node.recover(reset_log=False)
            image_after_first = node.image_bytes()
            second = node.recover(reset_log=False)
            assert node.image_bytes() == image_after_first
            assert second.redo_writes == first.redo_writes
            assert second.undo_writes == first.undo_writes
    finally:
        for node in nodes:
            node.release()


def test_recovery_with_truncated_tail_drops_uncommitted(traced_hash, dist_config):
    """Cut the ring mid-transaction: recovery must undo the dangling
    writes, and a second recovery over the same ring stays stable."""
    prepared, stream, _golden = traced_hash
    timeline = ShipTimeline(stream, dist_config)
    (node, other) = build_replicas(prepared, stream, timeline)
    try:
        # Find a frontier that splits a transaction: a DATA record whose
        # COMMIT lies beyond it.
        commit_seqs = sorted(s for s, *_ in stream.commit_map().values())
        mid_commit = commit_seqs[len(commit_seqs) // 2]
        frontier = mid_commit  # everything before, excluding the COMMIT
        node.truncate_to(frontier)
        report = node.recover(reset_log=False)
        assert report.records_scanned > 0
        image = node.image_bytes()
        again = node.recover(reset_log=False)
        assert node.image_bytes() == image
        assert again.committed_instances == report.committed_instances
    finally:
        node.release()
        other.release()


# ----------------------------------------------------------------------
# Re-shipped batches must not resurrect rolled-back transactions
# ----------------------------------------------------------------------
def test_reshipped_batch_cannot_resurrect_aborted_txns(traced_hash, dist_config):
    """Crash-during-log-ship replay: after recovery truncated an
    uncommitted tail, a late duplicate of the original batch arrives
    (the primary's retransmit raced the failover).  Appending it again
    must leave the recovered image untouched — sequence dedup plus the
    truncated ring make the replay harmless."""
    prepared, stream, _golden = traced_hash
    timeline = ShipTimeline(stream, dist_config)
    (node, other) = build_replicas(prepared, stream, timeline)
    try:
        commit_seqs = sorted(s for s, *_ in stream.commit_map().values())
        mid_commit = commit_seqs[len(commit_seqs) // 2]
        tail = stream.records[mid_commit - 2 : mid_commit + 1]
        node.truncate_to(mid_commit - 2)  # tail records never landed
        node.recover(reset_log=False)
        recovered = node.image_bytes()
        heap = node.heap_image()
        # The "re-shipped batch" arrives after recovery already ran.
        # appended bookkeeping says these slots are free again, but the
        # dedup contract is monotone: state can only be re-extended
        # through the normal append path, and recovery must be re-run
        # before the data is trusted.  The heap image must not move.
        for rec in tail:
            node.append(rec)
        assert node.heap_image() == heap
        node.recover(reset_log=False)
        # With the COMMIT record present again the transaction is simply
        # committed (it was never acked-aborted, just undone); the heap
        # must equal a node that received the records normally.
        reference = ReplicaNode(
            9, prepared.system, prepared.image_prefix, len(stream.records)
        )
        for rec in stream.records[: mid_commit + 1]:
            reference.append(rec)
        reference.recover(reset_log=False)
        assert node.heap_image() == reference.heap_image()
        reference.release()
        assert node.image_bytes() != recovered or True  # documentation only
    finally:
        node.release()
        other.release()
