"""Shipping-timeline mechanics: batching, windows, faults, truncation.

The timeline is the load-bearing abstraction of the dist layer: every
campaign point is "recompute the timeline with different inputs", so its
determinism and its fault semantics get direct coverage here.  The
flagship invariant — a primary crash at cycle T is exactly a truncation
of the durable record stream at T — is cross-checked against a *really*
crashed run (deadline fault monitor) at the bottom.
"""

from __future__ import annotations

import pytest

from repro.dist import DistConfig, LinkFault, ShipTimeline
from repro.dist.ship import LogStreamCollector
from repro.errors import SimulatedCrash
from repro.faults.crashpoints import FaultMonitor
from repro.harness.runner import RunConfig, run_workload
from repro.sim.trace import Tracer

from .conftest import HWL, THREADS, TXNS


# ----------------------------------------------------------------------
# Stream shape
# ----------------------------------------------------------------------
def test_stream_seqs_follow_durability_order(traced_hash):
    _prepared, stream, _golden = traced_hash
    assert stream.records, "traced run produced no durable records"
    durables = [rec.durable for rec in stream.records]
    assert durables == sorted(durables)
    assert [rec.seq for rec in stream.records] == list(range(len(durables)))


def test_commit_map_pairs_every_reported_commit(traced_hash):
    _prepared, stream, golden = traced_hash
    mapping = stream.commit_map()
    assert len(mapping) == THREADS * TXNS == len(golden.commits)
    golden_indexes = sorted(entry[2] for entry in mapping.values())
    assert golden_indexes == list(range(len(golden.commits)))
    for (tid, _ordinal), (seq, _txid, _gi, _reported) in mapping.items():
        rec = stream.records[seq]
        assert rec.kind == "COMMIT" and rec.tid == tid


def test_same_tid_records_stay_ordered_under_truncation(traced_hash):
    """Per-thread record order survives durability sorting (FIFO drains),
    so seq-truncation can never strand an uncommitted transaction behind
    a later same-tid record."""
    _prepared, stream, _golden = traced_hash
    per_tid_place = {}
    for rec in stream.records:
        times = per_tid_place.setdefault(rec.tid, [])
        assert not times or rec.place_time >= times[-1]
        times.append(rec.place_time)


# ----------------------------------------------------------------------
# Batching and window gating
# ----------------------------------------------------------------------
def test_batches_cut_at_size_or_commit(traced_hash, dist_config):
    _prepared, stream, _golden = traced_hash
    timeline = ShipTimeline(stream, dist_config)
    seqs = [rec.seq for batch in timeline.batches for rec in batch.records]
    assert seqs == list(range(len(stream.records)))
    for batch in timeline.batches[:-1]:
        assert (
            batch.count == dist_config.batch_records
            or batch.records[-1].kind == "COMMIT"
        )
        assert batch.ready == max(rec.durable for rec in batch.records)


def test_window_bounds_in_flight_batches(traced_hash):
    _prepared, stream, _golden = traced_hash
    config = DistConfig(nodes=3, replicas=2, window_batches=2)
    timeline = ShipTimeline(stream, config)
    events = [e for e in timeline.events if e.kind in ("ship", "repl_ack")]
    in_flight = {r: 0 for r in config.replica_ids}
    for event in events:
        replica = event.detail["replica"]
        if event.kind == "ship" and not event.detail["lost"]:
            in_flight[replica] += 1
            assert in_flight[replica] <= config.window_batches
        elif event.kind == "repl_ack":
            in_flight[replica] -= 1


def test_timeline_is_deterministic(traced_hash, dist_config):
    _prepared, stream, _golden = traced_hash
    one = ShipTimeline(stream, dist_config)
    two = ShipTimeline(stream, dist_config)
    assert [(e.time, e.kind, e.detail) for e in one.events] == [
        (e.time, e.kind, e.detail) for e in two.events
    ]
    assert one.cluster_committed == two.cluster_committed


# ----------------------------------------------------------------------
# Primary crash truncation
# ----------------------------------------------------------------------
def test_primary_crash_truncates_shipping(traced_hash, dist_config):
    _prepared, stream, _golden = traced_hash
    mid = stream.records[len(stream.records) // 2].durable
    timeline = ShipTimeline(stream, dist_config, primary_crash=mid)
    full = ShipTimeline(stream, dist_config)
    for replica in dist_config.replica_ids:
        assert timeline.frontier(replica) <= full.frontier(replica)
        shipped = {seq for seq, _t in timeline.links[replica].appends}
        for seq in shipped:
            assert stream.records[seq].durable <= mid
    assert set(timeline.cluster_committed) <= set(full.cluster_committed)


def test_after_quorum_crash_commits_everything(traced_hash, dist_config):
    _prepared, stream, _golden = traced_hash
    full = ShipTimeline(stream, dist_config)
    last_ack = max(
        ack[1] for link in full.links.values() for ack in link.acks.values()
    )
    late = ShipTimeline(stream, dist_config, primary_crash=last_ack + 1.0)
    assert len(late.cluster_committed) == len(stream.commit_map())


# ----------------------------------------------------------------------
# Link faults
# ----------------------------------------------------------------------
def test_drop_retransmits_after_timeout(traced_hash, dist_config):
    _prepared, stream, _golden = traced_hash
    fault = LinkFault("drop", 1, 1)
    timeline = ShipTimeline(stream, dist_config, faults=(fault,))
    ships = [
        e for e in timeline.events
        if e.kind == "ship" and e.detail["replica"] == 1 and e.detail["batch"] == 1
    ]
    assert [s.detail["lost"] for s in ships] == [True, False]
    assert ships[1].time == pytest.approx(
        ships[0].time + dist_config.link.retransmit_timeout
    )
    # The replica still ends complete: retransmission fills the gap.
    full = ShipTimeline(stream, dist_config)
    assert timeline.frontier(1) == full.frontier(1)


def test_dup_delivery_is_reacked_not_reapplied(traced_hash, dist_config):
    _prepared, stream, _golden = traced_hash
    fault = LinkFault("dup", 1, 2)
    timeline = ShipTimeline(stream, dist_config, faults=(fault,))
    delivers = [
        e for e in timeline.events
        if e.kind == "repl_deliver" and e.detail["replica"] == 1
        and e.detail["batch"] == 2
    ]
    assert [d.detail["duplicate"] for d in delivers] == [False, True]
    appends = [
        e.detail["seq"] for e in timeline.events
        if e.kind == "repl_append" and e.detail["replica"] == 1
    ]
    assert len(appends) == len(set(appends)), "duplicate batch re-applied"


def test_delayed_batch_blocks_successor_appends(traced_hash, dist_config):
    _prepared, stream, _golden = traced_hash
    delay = 3.0 * dist_config.link.latency
    fault = LinkFault("delay", 1, 1, delay=delay)
    timeline = ShipTimeline(stream, dist_config, faults=(fault,))
    appends = [
        (e.detail["seq"], e.time) for e in timeline.events
        if e.kind == "repl_append" and e.detail["replica"] == 1
    ]
    seqs = [seq for seq, _t in appends]
    times = [t for _seq, t in appends]
    assert seqs == sorted(seqs), "reordered arrival broke append order"
    assert times == sorted(times)


def test_torn_batch_kills_the_link_without_ack(traced_hash, dist_config):
    _prepared, stream, _golden = traced_hash
    baseline = ShipTimeline(stream, dist_config)
    # A mid-stream batch with at least two records, so keep_records=1
    # genuinely tears inside the batch.
    target = next(
        b.index for b in baseline.batches if b.index >= 1 and b.count >= 2
    )
    fault = LinkFault("torn", 1, target, keep_records=1, keep_bytes=20)
    timeline = ShipTimeline(stream, dist_config, faults=(fault,))
    link = timeline.links[1]
    assert link.torn is not None
    assert link.dead_after is not None
    assert target not in link.acks, "torn batch must never be acked"
    assert max(link.acks) == target - 1, "link stayed alive past the tear"
    # The tear lands at the batch's keep_records offset.
    torn_seq, keep_bytes, _when = link.torn
    boundary = timeline.batches[target].start + 1
    assert torn_seq == boundary
    assert keep_bytes == 20
    # Commits carried by the torn or later batches lose their quorum.
    committed_seqs = {
        stream.commit_map()[key][0] for key in timeline.cluster_committed
    }
    assert committed_seqs, "no commit survived before the tear"
    assert all(seq < boundary for seq in committed_seqs)


def test_replica_crash_freezes_its_frontier(traced_hash, dist_config):
    _prepared, stream, _golden = traced_hash
    mid = stream.records[len(stream.records) // 2].durable
    timeline = ShipTimeline(stream, dist_config, replica_crashes={1: mid})
    full = ShipTimeline(stream, dist_config)
    assert timeline.frontier(1) < full.frontier(1)
    assert timeline.frontier(2) == full.frontier(2)
    for _seq, durable in timeline.links[1].appends:
        assert durable <= mid


# ----------------------------------------------------------------------
# The flagship assumption: truncation == a really crashed primary
# ----------------------------------------------------------------------
def _record_key(rec):
    return (rec.kind, rec.tid, rec.addr, rec.undo, rec.redo, rec.durable)


def test_stream_truncation_matches_really_crashed_run(traced_hash):
    """Re-run the same primary with a deadline crash at T; its durable
    records must be exactly ``stream.truncated(T)`` from the full run."""
    prepared, stream, _golden = traced_hash
    deadline = stream.records[(2 * len(stream.records)) // 3].durable + 0.25
    holder = {}

    def hook(machine):
        machine.tracer = Tracer(capacity=64)
        holder["collector"] = LogStreamCollector(machine)
        machine.fault_monitor = FaultMonitor(deadline=deadline)

    with pytest.raises(SimulatedCrash) as crash_info:
        run_workload(
            prepared.workload,
            RunConfig(
                policy=HWL,
                threads=THREADS,
                txns_per_thread=TXNS,
                system=prepared.system,
            ),
            prepared=prepared,
            machine_hook=hook,
        )
    assert crash_info.value.kind == "deadline"
    crashed = holder["collector"].finish()
    expected = stream.truncated(deadline)
    actual = crashed.truncated(deadline)
    assert [_record_key(rec) for rec in actual] == [
        _record_key(rec) for rec in expected
    ]
