"""Replica ring compaction below the cluster-committed frontier.

Compaction folds the committed record prefix into the replica's
mirrored heap (redo in sequence order — recovery's own replay order)
and slides the suffix down, so an open-ended served stream fits a
bounded ring.  The correctness bar: a compacted replica must recover to
the *same committed heap image* as a replica that kept every record.
"""

import dataclasses

import pytest

from repro.dist.node import ReplicaNode
from repro.errors import ConfigError


def _committed_frontier(records):
    """Longest prefix length with no transaction left open."""
    open_txids: set = set()
    frontier = 0
    for index, rec in enumerate(records):
        if rec.kind == "COMMIT":
            open_txids.discard(rec.txid)
        else:
            open_txids.add(rec.txid)
        if not open_txids:
            frontier = index + 1
    return frontier


def _node(traced_hash, capacity=None):
    prepared, stream, _golden = traced_hash
    return ReplicaNode(
        1, prepared.system, prepared.image_prefix,
        capacity or max(1, len(stream.records)),
    ), stream


def test_compaction_preserves_the_recovered_image(traced_hash):
    """Full-ring replica vs mid-stream-compacted replica: identical
    committed heap after recovery."""
    full, stream = _node(traced_hash)
    compacted, _ = _node(traced_hash)
    records = stream.records
    frontier = _committed_frontier(records[: len(records) // 2])
    assert frontier > 0  # the run commits transactions in its first half
    try:
        for rec in records:
            full.append(rec)
        for rec in records[: len(records) // 2]:
            compacted.append(rec)
        dropped = compacted.compact_below(frontier)
        assert dropped == frontier
        assert compacted.base_seq == frontier
        for rec in records[len(records) // 2 :]:
            compacted.append(rec)
        full.recover(reset_log=False)
        compacted.recover(reset_log=False)
        assert full.heap_image() == compacted.heap_image()
    finally:
        full.release()
        compacted.release()


def test_compaction_slides_slots_and_scan_agrees(traced_hash):
    node, stream = _node(traced_hash)
    records = stream.records
    frontier = _committed_frontier(records)
    try:
        for rec in records:
            node.append(rec)
        assert node.scan_frontier() == len(records)
        dropped = node.compact_below(frontier)
        assert dropped == frontier
        assert node.appended == len(records) - frontier
        # The NVRAM-read-back frontier counts compacted records as
        # durable by construction: base_seq + surviving slots.
        assert node.scan_frontier() == len(records)
    finally:
        node.release()


def test_duplicate_below_base_seq_is_ignored(traced_hash):
    node, stream = _node(traced_hash)
    records = stream.records
    frontier = _committed_frontier(records[:8])
    assert frontier > 0
    try:
        for rec in records[:8]:
            node.append(rec)
        node.compact_below(frontier)
        before = node.appended
        for rec in records[:frontier]:  # re-shipped compacted batch
            node.append(rec)
        assert node.appended == before  # nothing resurrected
    finally:
        node.release()


def test_truncate_is_absolute_after_compaction(traced_hash):
    node, stream = _node(traced_hash)
    records = stream.records
    # Compact only the first half's committed prefix so a real suffix
    # survives in the ring for the truncation to cut.
    frontier = _committed_frontier(records[: len(records) // 2])
    assert 0 < frontier < len(records)
    try:
        for rec in records:
            node.append(rec)
        node.compact_below(frontier)
        keep_to = frontier + (len(records) - frontier) // 2
        assert keep_to > frontier
        node.truncate_to(keep_to)
        assert node.appended == keep_to - frontier
        assert node.scan_frontier() == keep_to
    finally:
        node.release()


def test_full_ring_demands_compaction(traced_hash):
    prepared, stream, _golden = traced_hash
    node = ReplicaNode(1, prepared.system, prepared.image_prefix, 64)
    assert len(stream.records) > 64  # the traced run overfills the ring
    try:
        with pytest.raises(ConfigError, match="compact below"):
            for rec in stream.records:
                node.append(rec)
        # After compacting the committed prefix the stream fits again.
        frontier = _committed_frontier(stream.records[: node.appended])
        node.compact_below(frontier)
        resumed = node.base_seq + node.appended
        for rec in stream.records[resumed : resumed + 8]:
            node.append(rec)
    finally:
        node.release()


def test_undo_only_records_cannot_compact(traced_hash):
    node, stream = _node(traced_hash)
    records = stream.records
    data = next(rec for rec in records if rec.kind == "DATA")
    stripped = dataclasses.replace(data, redo=b"", seq=0)
    try:
        node.append(stripped)
        if stripped.kind != "COMMIT":
            with pytest.raises(ConfigError, match="undo-only"):
                node.compact_below(1)
    finally:
        node.release()


def test_compact_below_base_is_a_noop(traced_hash):
    node, stream = _node(traced_hash)
    try:
        for rec in stream.records[:4]:
            node.append(rec)
        assert node.compact_below(0) == 0
        assert node.base_seq == 0 and node.appended == 4
    finally:
        node.release()
