"""The tentpole acceptance gate: on the drifting workload the adaptive
controller must beat *every* static design in the legal family on total
simulated cycles — and do so deterministically."""

from __future__ import annotations

import pytest

from repro.adapt import DriftConfig, DriftPhase, compare_drift, run_drift
from repro.adapt.drift import WRITEBACK_FAMILY


@pytest.fixture(scope="module")
def comparison():
    return compare_drift(DriftConfig())


def test_adaptive_beats_every_static(comparison):
    adaptive_cycles = comparison["adaptive_cycles"]
    assert comparison["static"], "no static baselines ran"
    for name in WRITEBACK_FAMILY:
        assert name in comparison["static"]
    for name, report in comparison["static"].items():
        assert adaptive_cycles < report["total_cycles"], (
            f"adaptive ({adaptive_cycles:.1f}) does not beat static "
            f"{name} ({report['total_cycles']:.1f})"
        )
    assert comparison["adaptive_wins"]
    assert comparison["margin"] > 0.0


def test_adaptive_run_switches_and_serves_everything(comparison):
    adaptive = comparison["adaptive"]
    assert adaptive["adaptive"] is True
    assert adaptive["counters"]["design_switches"] >= 1
    assert adaptive["completed"] == adaptive["offered"]
    assert adaptive["rejected"] == 0
    switched = [
        d
        for d in adaptive["adaptation"]["decisions"]
        if d["outcome"] == "switched"
    ]
    assert len(switched) == adaptive["counters"]["design_switches"]


def test_static_baselines_serve_everything(comparison):
    # Lossless admission: the race is fair only if every design served
    # the identical request stream.
    for report in comparison["static"].values():
        assert report["completed"] == report["offered"]
        assert report["counters"]["design_switches"] == 0


def test_drift_run_is_deterministic():
    config = DriftConfig(
        phases=(
            DriftPhase(48, 0.9, 0.30, 0.65),
            DriftPhase(48, 0.9, 0.65, 1.0),
        )
    )
    first = run_drift(config)
    second = run_drift(config)
    assert first == second
