"""The ``switch-epoch-clean`` sanitizer rule: silent on honest barriers,
loud on a forged switch event with state in flight."""

from __future__ import annotations

import pytest

from repro.sanitizer.checker import PersistOrderChecker
from repro.sanitizer.rules import LOGGING_RULES, RULES

from .conftest import run_with_switches


def test_rule_is_registered():
    assert "switch-epoch-clean" in RULES
    assert "switch-epoch-clean" in LOGGING_RULES
    rule = RULES["switch-epoch-clean"]
    assert rule.paper_ref == "adapt"


@pytest.mark.parametrize(
    "pair",
    [
        ("hw+undo+redo+nowb", "hw+undo+redo+clwb"),
        ("hw+undo+redo+clwb", "hw+undo+redo+fwb"),
        ("sw+undo+redo+clwb", "sw+undo+clwb"),
        ("sw+undo+clwb", "sw+undo+redo+clwb"),
    ],
    ids=lambda pair: f"{pair[0]}->{pair[1]}",
)
def test_honest_barrier_is_clean(pair):
    holder = {}

    def hook(machine):
        holder["checker"] = PersistOrderChecker.attach(machine)

    machine, _pm = run_with_switches(pair, [24], machine_hook=hook)
    machine.finalize()
    report = holder["checker"].finish()
    assert machine.stats.design_switches == 1
    assert "switch-epoch-clean" in report.rules_checked
    assert not report.diagnostics, [
        (d.rule, d.message) for d in report.diagnostics
    ]


def test_forged_switch_event_fires_the_rule():
    """Emitting ``design_switch`` mid-run WITHOUT running the barrier
    must trip the rule: open transactions, undrained records, and
    un-written-back logged lines all straddle the forged epoch."""
    holder = {}
    forged = {}

    class _SplicingTracer:
        """Forwards to the checker's tracer, splicing in one forged
        switch event at the first commit."""

        def __init__(self, inner):
            self._inner = inner

        def emit(self, time, kind, core=-1, /, **detail):
            self._inner.emit(time, kind, core, **detail)
            if kind == "tx_begin" and "done" not in forged:
                forged["done"] = True
                self._inner.emit(
                    time,
                    "design_switch",
                    -1,
                    old="hw+undo+redo+nowb",
                    new="hw+undo+redo+clwb",
                )

    def hook(machine):
        holder["checker"] = PersistOrderChecker.attach(machine)
        machine.tracer = _SplicingTracer(machine.tracer)

    machine, _pm = run_with_switches(
        ["hw+undo+redo+nowb", "hw+undo+redo+nowb"],
        [10**9],
        txns_per_thread=8,
        machine_hook=hook,
    )
    machine.finalize()
    report = holder["checker"].finish()
    fired = [d for d in report.diagnostics if d.rule == "switch-epoch-clean"]
    assert fired, "forged mid-run switch event went unnoticed"
    assert any("still open" in d.message for d in fired) or any(
        "written back" in d.message or "reaches NVRAM" in d.message
        for d in fired
    )
