"""The safe-switch barrier on a live machine: legality, barrier
cleanliness, trace events, and log truncation on content switches."""

from __future__ import annotations

import pytest

from repro.core.design import (
    check_switch_transition,
    legal_switch_targets,
    resolve_design,
    switch_legal,
)
from repro.core.recovery import RecoveryManager
from repro.errors import SimulationError

from .conftest import run_with_switches

NOWB = "hw+undo+redo+nowb"
CLWB = "hw+undo+redo+clwb"
FWB = "hw+undo+redo+fwb"
SW_UNDO = "sw+undo+clwb"
SW_BOTH = "sw+undo+redo+clwb"


class TestLegality:
    def test_writeback_family_is_closed(self):
        for old in (NOWB, CLWB, FWB):
            for new in (NOWB, CLWB, FWB):
                if old != new:
                    assert switch_legal(resolve_design(old), resolve_design(new))

    def test_backend_change_is_illegal(self):
        assert not switch_legal(resolve_design(CLWB), resolve_design(SW_BOTH))
        with pytest.raises(Exception):
            check_switch_transition(
                resolve_design(CLWB), resolve_design(SW_BOTH)
            )

    def test_legal_targets_filter_candidates(self):
        spec = resolve_design(CLWB)
        candidates = [resolve_design(name) for name in (NOWB, FWB, SW_BOTH)]
        targets = legal_switch_targets(spec, candidates)
        assert resolve_design(NOWB) in targets
        assert resolve_design(FWB) in targets
        assert resolve_design(SW_BOTH) not in targets


class TestBarrier:
    def test_switch_advances_all_cores_to_barrier(self):
        machine, _pm = run_with_switches([NOWB, CLWB], [10])
        stats = machine.finalize()
        assert stats.design_switches == 1
        assert stats.switch_barrier_cycles >= 0.0
        assert machine.policy == resolve_design(CLWB)

    def test_switch_to_same_design_is_a_noop(self, machine):
        before = machine.stats.design_switches
        machine.switch_design(machine.policy)
        assert machine.stats.design_switches == before

    def test_switch_after_crash_raises(self, machine):
        machine.crash()
        with pytest.raises(SimulationError):
            machine.switch_design(resolve_design(NOWB))

    def test_barrier_covers_inflight_bank_writes(self):
        # The barrier must end at or after every posted NVRAM write.
        machine, _pm = run_with_switches([CLWB, NOWB], [10])
        # After the run the switch happened mid-way; nothing to assert
        # beyond consistency here (psan covers the invariant); the
        # barrier accounting must at least be monotonic.
        assert machine.stats.switch_barrier_cycles >= 0.0

    def test_trace_event_carries_designs_and_truncation(self):
        events = []

        class _Tracer:
            def emit(self, time, kind, core=-1, /, **detail):
                if kind == "design_switch":
                    events.append((time, detail))

        def hook(machine):
            machine.tracer = _Tracer()

        run_with_switches([NOWB, FWB], [10], machine_hook=hook)
        assert len(events) == 1
        _, detail = events[0]
        assert detail["old"] == NOWB
        assert detail["new"] == FWB
        assert detail["truncated"] is False


class TestLogTruncation:
    def test_content_switch_truncates_the_ring(self):
        machine, _pm = run_with_switches(
            [SW_BOTH, SW_UNDO], [1_000_000], txns_per_thread=8
        )
        # Threshold beyond the run: the switch fired at the tail, after
        # records were placed — the content change must empty the ring.
        window = RecoveryManager(machine.nvram, machine.log).scan_window()
        assert machine.stats.design_switches == 1
        assert window == []
        assert machine.log.live_entries == 0
        assert machine.log.tail == 0 and machine.log.head == 0
        assert not machine.log.wrapped

    def test_policy_switch_keeps_the_ring(self):
        machine, _pm = run_with_switches(
            [NOWB, CLWB], [1_000_000], txns_per_thread=8
        )
        window = RecoveryManager(machine.nvram, machine.log).scan_window()
        assert machine.stats.design_switches == 1
        assert window != []

    def test_post_truncation_records_are_scannable(self):
        # Finish a run *after* a content switch: the new epoch's records
        # must decode cleanly from the reset ring.
        machine, _pm = run_with_switches([SW_UNDO, SW_BOTH], [8])
        window = RecoveryManager(machine.nvram, machine.log).scan_window()
        assert machine.stats.design_switches == 1
        assert window, "post-switch epoch placed no scannable records"
        data = [r for r in window if r.kind.name == "DATA"]
        # The ring was truncated at the switch, so every surviving DATA
        # record belongs to the undo+redo epoch and carries a redo side.
        assert data and all(record.has_redo for record in data)
