"""Property test: any *legal* sequence of design switches preserves the
sanitizer's invariants and crash consistency at the end of the run.

Sequences are seeded random walks over ``legal_switch_targets`` starting
from each write-back-family member, so every run exercises a different
chain of barriers (including content switches when the walk starts in
the software-logging family)."""

from __future__ import annotations

import random

import pytest

from repro.core.design import legal_switch_targets, resolve_design

_CANDIDATES = (
    "hw+undo+redo+nowb",
    "hw+undo+redo+clwb",
    "hw+undo+redo+fwb",
    "sw+undo+clwb",
    "sw+undo+redo+clwb",
)
from repro.faults.campaign import _count_mismatches
from repro.sanitizer.checker import PersistOrderChecker

from .conftest import run_with_switches

_STARTS = ("hw+undo+redo+nowb", "hw+undo+redo+fwb", "sw+undo+clwb")


def _legal_walk(start: str, hops: int, seed: int) -> list:
    rng = random.Random(seed)
    candidates = [resolve_design(name) for name in _CANDIDATES]
    walk = [resolve_design(start)]
    for _ in range(hops):
        targets = [
            target
            for target in legal_switch_targets(walk[-1], candidates)
            if target != walk[-1]
        ]
        if not targets:
            break
        walk.append(rng.choice(targets))
    return walk


@pytest.mark.parametrize("start", _STARTS)
@pytest.mark.parametrize("seed", [3, 17])
def test_legal_switch_sequences_stay_clean(start, seed):
    walk = _legal_walk(start, hops=3, seed=seed)
    assert len(walk) >= 2, f"no legal targets from {start}"
    txns_per_thread = 24
    total = 2 * txns_per_thread
    hops = len(walk) - 1
    switch_at = [max(1, (i + 1) * total // (hops + 1)) for i in range(hops)]

    holder = {}

    def hook(machine):
        holder["checker"] = PersistOrderChecker.attach(machine)

    machine, pm = run_with_switches(
        walk,
        switch_at,
        txns_per_thread=txns_per_thread,
        machine_hook=hook,
    )
    machine.finalize()
    report = holder["checker"].finish()
    assert machine.stats.design_switches == hops
    assert "switch-epoch-clean" in report.rules_checked
    assert not report.diagnostics, [
        (d.rule, d.message) for d in report.diagnostics
    ]

    # End-of-run crash consistency: with every transaction committed
    # the recovered image must match the golden committed state.
    crash_time = machine.crash()
    from repro.core.recovery import RecoveryManager

    RecoveryManager(machine.nvram, machine.log).recover()
    assert _count_mismatches(machine.nvram, pm, crash_time) == 0
