"""Adaptive serve mode: config plumbing, report shape, and the
byte-identical determinism the CI adapt-smoke job replays."""

from __future__ import annotations

from repro.adapt import default_policy_table
from repro.adapt.table import PolicyTable, make_rule
from repro.core.design import resolve_design
from repro.errors import ConfigError
from repro.sched.serve import ServeConfig, run_serve
from repro.sched.traffic import TrafficConfig

import pytest


def _config(**overrides) -> ServeConfig:
    defaults = dict(
        workload="ycsb",
        shards=1,
        threads=2,
        policy_table=default_policy_table(),
        adapt_window_txns=8,
        traffic=TrafficConfig(requests=48, rate=0.01, seed=42),
    )
    defaults.update(overrides)
    return ServeConfig(**defaults)


def test_policy_table_start_seeds_the_design():
    table = PolicyTable(
        rules=(make_rule({"wrap_pressure_min": 0.5}, "hw+undo+redo+clwb"),),
        default=None,
        start=resolve_design("hw+undo+redo+nowb"),
    )
    config = _config(policy_table=table)
    assert config.policy == resolve_design("hw+undo+redo+nowb")


def test_explicit_policy_overrides_table_start():
    table = PolicyTable(
        rules=(),
        default=None,
        start=resolve_design("hw+undo+redo+nowb"),
    )
    config = _config(policy="hw+undo+redo+clwb", policy_table=table)
    assert config.policy == resolve_design("hw+undo+redo+clwb")


def test_invalid_adaptive_knobs_rejected():
    with pytest.raises(ConfigError):
        _config(adapt_window_txns=0).validate()
    with pytest.raises(ConfigError):
        _config(drain_checkpoint_cycles=0.0).validate()


def test_adaptive_report_carries_adaptation_block():
    report = run_serve(_config())
    assert report.adaptation
    assert report.adaptation["window_txns"] == 8
    assert report.adaptation["start_design"]
    assert len(report.adaptation["final_designs"]) == 1
    assert "adaptive:" in report.render()
    assert "design switches" in report.render_markdown()


def test_non_adaptive_report_has_no_adaptation_block():
    report = run_serve(_config(policy_table=None, policy="fwb"))
    assert report.adaptation == {}
    assert "adaptive:" not in report.render()


def test_adaptive_serve_is_deterministic():
    first = run_serve(_config())
    second = run_serve(_config())
    assert first.digest() == second.digest()
    assert first.to_dict() == second.to_dict()
