"""The ``repro adapt`` command group and the adaptive serve flags."""

from __future__ import annotations

import json

import pytest

from repro.__main__ import build_parser, main


class TestParser:
    def test_adapt_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["adapt"])

    def test_train_defaults(self):
        args = build_parser().parse_args(["adapt", "train"])
        assert args.benchmarks is None
        assert args.txns == 160
        assert args.out == "policy_table.json"

    def test_run_defaults(self):
        args = build_parser().parse_args(["adapt", "run"])
        assert args.policy_table is None
        assert args.window == 4
        assert args.seed == 42

    def test_faults_defaults(self):
        args = build_parser().parse_args(["adapt", "faults"])
        assert args.workload == "hash"
        assert args.txns == 24
        assert args.seed == 7

    def test_serve_adaptive_flags(self):
        args = build_parser().parse_args(
            ["serve", "--adaptive", "--adapt-window", "8"]
        )
        assert args.adaptive
        assert args.adapt_window == 8
        assert args.design is None

    def test_serve_policy_table_implies_adaptive(self):
        args = build_parser().parse_args(
            ["serve", "--policy-table", "t.json"]
        )
        assert args.policy_table == "t.json"


class TestCommands:
    def test_adapt_run_wins_and_reports(self, capsys):
        assert main(["adapt", "run"]) == 0
        out = capsys.readouterr().out
        assert "adaptive WINS" in out
        assert "best static:" in out

    def test_adapt_run_json_dump(self, tmp_path, capsys):
        path = tmp_path / "drift.json"
        assert main(["adapt", "run", "--json", str(path)]) == 0
        capsys.readouterr()
        doc = json.loads(path.read_text())
        assert doc["adaptive_wins"] is True
        assert set(doc["static"]) >= {
            "hw+undo+redo+nowb",
            "hw+undo+redo+clwb",
            "hw+undo+redo+fwb",
        }

    def test_adapt_train_writes_versioned_table(self, tmp_path, capsys):
        path = tmp_path / "table.json"
        code = main(
            [
                "adapt",
                "train",
                "--benchmarks",
                "hash",
                "--threads",
                "1",
                "--txns",
                "30",
                "--no-cache",
                "--out",
                str(path),
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "policy table written" in out
        doc = json.loads(path.read_text())
        assert doc["schema"] == "repro-adapt/v1"

    def test_serve_adaptive_accepts_trained_table(self, tmp_path, capsys):
        path = tmp_path / "table.json"
        assert (
            main(
                [
                    "adapt",
                    "train",
                    "--benchmarks",
                    "hash",
                    "--threads",
                    "1",
                    "--txns",
                    "30",
                    "--no-cache",
                    "--out",
                    str(path),
                ]
            )
            == 0
        )
        capsys.readouterr()
        code = main(
            [
                "serve",
                "--workload",
                "ycsb",
                "--requests",
                "32",
                "--policy-table",
                str(path),
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "adaptive:" in out
