"""Policy tables and the adaptive controller: decision semantics, JSON
round-trips, and trainer determinism."""

from __future__ import annotations

import json

import pytest

from repro.adapt import (
    AdaptiveController,
    PolicyTable,
    default_policy_table,
    train_policy_table,
)
from repro.adapt.features import FEATURE_NAMES, WindowFeatures
from repro.adapt.table import make_rule
from repro.core.design import resolve_design

NOWB = resolve_design("hw+undo+redo+nowb")
CLWB = resolve_design("hw+undo+redo+clwb")
FWB = resolve_design("hw+undo+redo+fwb")


def _features(**overrides) -> WindowFeatures:
    values = dict(
        write_intensity=0.0,
        txn_size=4.0,
        wrap_pressure=0.0,
        miss_rate=0.1,
        transactions=16,
    )
    values.update(overrides)
    return WindowFeatures(**values)


class TestPolicyTable:
    def test_default_table_holds_under_calm_features(self):
        table = default_policy_table()
        assert table.decide(_features(), NOWB) == NOWB
        assert table.decide(_features(), FWB) == FWB

    def test_default_table_reacts_to_wrap_pressure(self):
        table = default_policy_table()
        pressured = _features(wrap_pressure=0.9)
        assert table.decide(pressured, NOWB) == CLWB

    def test_first_matching_rule_wins(self):
        table = PolicyTable(
            rules=(
                make_rule({"wrap_pressure_min": 0.5}, FWB),
                make_rule({"wrap_pressure_min": 0.1}, CLWB),
            ),
            default=None,
        )
        assert table.decide(_features(wrap_pressure=0.7), NOWB) == FWB
        assert table.decide(_features(wrap_pressure=0.2), NOWB) == CLWB

    def test_unknown_condition_rejected(self):
        with pytest.raises(Exception):
            make_rule({"bogus_min": 1.0}, CLWB)
        for name in FEATURE_NAMES:
            make_rule({f"{name}_min": 0.0, f"{name}_max": 1.0}, CLWB)

    def test_json_roundtrip(self, tmp_path):
        table = default_policy_table()
        path = tmp_path / "table.json"
        table.save(path)
        loaded = PolicyTable.load(path)
        assert loaded.to_json() == table.to_json()
        doc = json.loads(path.read_text())
        assert doc["schema"] == "repro-adapt/v1"

    def test_roundtrip_preserves_decisions(self, tmp_path):
        table = PolicyTable(
            rules=(
                make_rule({"wrap_pressure_min": 0.5, "txn_size_max": 9.0}, FWB),
            ),
            default=CLWB,
            start=NOWB,
        )
        path = tmp_path / "t.json"
        table.save(path)
        loaded = PolicyTable.load(path)
        probes = [
            _features(wrap_pressure=w, txn_size=t)
            for w in (0.0, 0.4, 0.6, 1.0)
            for t in (2.0, 8.0, 12.0)
        ]
        for features in probes:
            assert loaded.decide(features, NOWB) == table.decide(
                features, NOWB
            )
        assert loaded.start == NOWB


class TestController:
    def test_rejects_nonpositive_window(self):
        with pytest.raises(ValueError):
            AdaptiveController(default_policy_table(), window_txns=0)

    def test_summary_shape(self):
        controller = AdaptiveController(default_policy_table(), window_txns=8)
        summary = controller.summary()
        assert summary == {
            "window_txns": 8,
            "switches": 0,
            "decisions": [],
        }


class TestTrainer:
    def test_benchmark_training_is_deterministic(self):
        kwargs = dict(
            benchmarks=("hash",),
            threads=1,
            txns_per_thread=30,
            seed=42,
        )
        first = train_policy_table(**kwargs)
        second = train_policy_table(**kwargs)
        assert first.to_json() == second.to_json()
        assert first.trained_on["mode"] == "benchmarks"
        assert len(first.trained_on["units"]) == 1
        assert first.start is not None

    def test_two_unit_training_separates_or_holds(self):
        table = train_policy_table(
            benchmarks=("hash", "sps"), threads=1, txns_per_thread=30, seed=42
        )
        units = table.trained_on["units"]
        assert [unit["label"] for unit in units] == ["hash", "sps"]
        winners = {unit["best"] for unit in units}
        if len(winners) > 1:
            assert table.rules, "distinct winners need separating rules"
        for unit in units:
            assert set(unit["cycles"]) == {
                "hw+undo+redo+nowb",
                "hw+undo+redo+clwb",
                "hw+undo+redo+fwb",
            }
