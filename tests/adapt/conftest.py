"""Shared helper for the adaptive-logging tests: a closed-loop run with
one (or several) mid-run design switches, built the same way the switch
fault campaign builds its runs."""

from __future__ import annotations

import heapq

from repro.core.design import resolve_design
from repro.faults.campaign import campaign_workload, default_campaign_system
from repro.harness.runner import prepare_workload
from repro.sim.machine import Machine
from repro.txn.runtime import PersistentMemory


def run_with_switches(
    specs,
    switch_at,
    threads: int = 2,
    txns_per_thread: int = 24,
    workload: str = "hash",
    seed: int = 7,
    machine_hook=None,
):
    """Run ``workload`` under ``specs[0]``, switching to each later spec
    at the matching commit count in ``switch_at``; returns the machine
    and persistent-memory handle after a finished run.
    """
    specs = [resolve_design(spec) for spec in specs]
    assert len(switch_at) == len(specs) - 1
    system = default_campaign_system()
    wl = campaign_workload(workload, seed)
    prepared = prepare_workload(wl, system)
    machine = Machine(system, specs[0])
    if machine_hook is not None:
        machine_hook(machine)
    pm = PersistentMemory(machine)
    prepared.restore_into(machine)
    pm.heap.restore(prepared.heap_state)
    prepared.workload.attach(pm)
    apis = [pm.api(core_id=tid, tid=tid) for tid in range(threads)]
    generators = [
        prepared.workload.thread_body(apis[tid], tid, txns_per_thread)
        for tid in range(threads)
    ]
    ready = [(machine.core_time(tid), tid) for tid in range(threads)]
    heapq.heapify(ready)
    pending = list(zip(switch_at, specs[1:]))
    while ready:
        if pending and machine.stats.transactions_committed >= pending[0][0]:
            machine.switch_design(pending.pop(0)[1])
            for api in apis:
                api.refresh_policy()
        _, tid = heapq.heappop(ready)
        try:
            next(generators[tid])
        except StopIteration:
            continue
        heapq.heappush(ready, (machine.core_time(tid), tid))
    while pending:  # thresholds past the run's end: switch at the tail
        machine.switch_design(pending.pop(0)[1])
    return machine, pm
