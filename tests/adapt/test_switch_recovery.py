"""Crash-at-the-barrier recovery: the switch campaign's core claims,
exercised directly on a small set of transitions (the full default
campaign runs in the nightly CI tier)."""

from __future__ import annotations

import pytest

from repro.adapt.faults import (
    default_switch_transitions,
    run_switch_campaign,
)
from repro.core.design import resolve_design, switch_legal


class TestDefaultTransitions:
    def test_default_transitions_all_legal(self):
        transitions = default_switch_transitions()
        assert transitions
        for old, new in transitions:
            assert old != new
            assert switch_legal(old, new)

    def test_writeback_family_and_content_switch_present(self):
        labels = {
            (old.mechanism_string(), new.mechanism_string())
            for old, new in default_switch_transitions()
        }
        assert ("hw+undo+redo+nowb", "hw+undo+redo+clwb") in labels
        assert ("sw+undo+redo+clwb", "sw+undo+clwb") in labels


@pytest.mark.parametrize(
    "pair",
    [
        ("hw+undo+redo+nowb", "hw+undo+redo+clwb"),
        ("hw+undo+redo+fwb", "hw+undo+redo+nowb"),
        ("sw+undo+redo+clwb", "sw+undo+clwb"),
    ],
    ids=lambda pair: f"{pair[0]}->{pair[1]}",
)
class TestBarrierCrash:
    def test_crash_on_either_side_recovers_identically(self, pair):
        old, new = (resolve_design(name) for name in pair)
        result = run_switch_campaign(
            transitions=[(old, new)], txns_per_thread=12
        )
        assert result.total_points >= 2
        (report,) = result.reports
        assert report.sides_identical, (
            "recovered NVRAM differs across the swap for "
            f"{report.label}"
        )
        for point in report.points:
            assert point.triggered, f"{point.kind} crash point never fired"
            assert point.mismatches == 0, (
                f"{point.kind} recovery diverged from the golden image"
            )
            assert point.converged, (
                f"{point.kind} recovery was not idempotent"
            )
