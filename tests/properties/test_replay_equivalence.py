"""Property test: compiled-trace replay == per-op interpretation.

The execution engine (:mod:`repro.sim.replay`) claims replaying a
compiled trace is *bit-identical* to interpreting the workload's
micro-op stream — for every design and thread count.  The structured
microbenchmarks exercise realistic streams; this test attacks the claim
with **randomized** ones: a synthetic workload whose transactions mix
reads, single- and multi-line writes, computes, allocations, pointer
stores and frees in seeded-random order, swept across all eight
canonical designs at 1, 2 and 4 threads.

Any divergence — a missed stall, a dropped log record, a mis-relocated
allocation — shows up as a differing :class:`MachineStats` field.
"""

import dataclasses

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.design import CANONICAL_DESIGNS
from repro.harness.runner import RunConfig, prepare_workload, run_workload
from repro.sim.replay import compile_trace, run_compiled
from repro.workloads.base import SetupAccessor, Workload
from repro.workloads.rng import thread_rng
from tests.conftest import tiny_system

MAX_PARTITIONS = 4


class RandomOpsWorkload(Workload):
    """Seeded-random accessor-op soup (partitioned, so trace-compilable)."""

    name = "randomops"
    trace_compilable = True

    def __init__(
        self,
        seed: int = 42,
        value_kind: str = "int",
        words_per_partition: int = 40,
        ops_per_txn: int = 8,
    ) -> None:
        super().__init__(seed, value_kind)
        self.words_per_partition = words_per_partition
        self.ops_per_txn = ops_per_txn
        self._bases: list = []

    def setup(self, pm) -> None:
        acc = SetupAccessor(pm)
        self._bases = []
        for part in range(MAX_PARTITIONS):
            base = pm.heap.alloc(self.words_per_partition * 8)
            acc.write(
                base,
                b"".join(
                    (part * 1000 + i).to_bytes(8, "little")
                    for i in range(self.words_per_partition)
                ),
            )
            self._bases.append(base)

    def thread_body(self, api, tid: int, num_txns: int):
        base = self._bases[tid % MAX_PARTITIONS]
        rng = thread_rng(self.seed, tid)
        live: list = []
        for txn in range(num_txns):
            with api.transaction():
                for _ in range(self.ops_per_txn):
                    roll = rng.random()
                    index = rng.randrange(self.words_per_partition - 4)
                    addr = base + index * 8
                    if roll < 0.25:
                        api.read(addr, 8 * rng.choice((1, 2)))
                    elif roll < 0.50:
                        span = rng.choice((8, 16, 32))
                        # Word values stay below 2**32 (plain data must
                        # never collide with the engine's symbolic
                        # address range).
                        api.write(
                            addr,
                            b"".join(
                                rng.getrandbits(32).to_bytes(8, "little")
                                for _ in range(span // 8)
                            ),
                        )
                    elif roll < 0.62:
                        api.compute(rng.randrange(1, 24))
                    elif roll < 0.72 and live:
                        # Store a heap pointer into the partition array
                        # (exercises symbolic-piece relocation).
                        api.write(addr, live[-1][0].to_bytes(8, "little"))
                    elif roll < 0.88 or not live:
                        size = rng.choice((8, 16, 24, 32))
                        block = api.alloc(size)
                        api.write(block, bytes((txn % 251,)) * size)
                        api.read(block, 8)
                        live.append((block, size))
                    else:
                        block, size = live.pop(rng.randrange(len(live)))
                        api.free(block, size)
            yield


def _stats_dict(outcome) -> dict:
    return dataclasses.asdict(outcome.stats)


class TestReplayEquivalence:
    @given(seed=st.integers(0, 2**20))
    @settings(max_examples=5, deadline=None)
    def test_replay_matches_interpretation(self, seed):
        workload = RandomOpsWorkload(seed=seed)
        system = tiny_system(num_cores=4)
        prepared = prepare_workload(workload, system)
        txns = 3
        for threads in (1, 2, 4):
            trace = compile_trace(prepared, threads, txns)
            for design in CANONICAL_DESIGNS:
                config = RunConfig(
                    policy=design,
                    threads=threads,
                    txns_per_thread=txns,
                    system=system,
                    seed=seed,
                )
                interpreted = run_workload(
                    workload, config, prepared=prepared
                )
                replayed = run_compiled(trace, config)
                assert _stats_dict(interpreted) == _stats_dict(replayed), (
                    f"stats drift: seed={seed} threads={threads} "
                    f"design={design.value}"
                )
