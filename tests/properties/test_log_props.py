"""Property-based tests for the log record format and circular log."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.logrecord import LogRecord, RecordKind
from repro.core.nvlog import CircularLog

records = st.builds(
    LogRecord,
    kind=st.sampled_from([RecordKind.BEGIN, RecordKind.DATA, RecordKind.COMMIT]),
    txid=st.integers(0, (1 << 16) - 1),
    tid=st.integers(0, 255),
    addr=st.integers(0, (1 << 48) - 1),
    undo=st.binary(max_size=8),
    redo=st.binary(max_size=8),
    torn=st.integers(0, 1),
)


class TestRecordRoundtrip:
    @given(record=records, entry_size=st.sampled_from([32, 64]))
    def test_encode_decode_identity(self, record, entry_size):
        # Equal-length undo/redo is the format's contract; clip to match.
        size = min(len(record.undo), len(record.redo)) if (
            record.undo and record.redo
        ) else max(len(record.undo), len(record.redo))
        record = LogRecord(
            record.kind,
            record.txid,
            record.tid,
            record.addr,
            record.undo[:size] if record.undo else b"",
            record.redo[:size] if record.redo else b"",
            record.torn,
        )
        assert LogRecord.decode(record.encode(entry_size)) == record

    @given(record=records)
    def test_encoded_length_exact(self, record):
        assert len(record.encode(64)) == 64

    @given(raw=st.binary(min_size=64, max_size=64))
    def test_decode_never_crashes_on_magic_mismatch(self, raw):
        """Arbitrary bytes either decode or return None — unless they
        carry the magic with a corrupt size field, which must raise."""
        from repro.errors import LogError

        try:
            LogRecord.decode(raw)
        except LogError:
            pass  # explicit corruption report is acceptable


class TestCircularLogProperties:
    @given(
        num_entries=st.sampled_from([2, 4, 8, 16]),
        appends=st.integers(1, 100),
    )
    @settings(max_examples=40)
    def test_tail_and_parity_track_appends(self, num_entries, appends):
        log = CircularLog(0, num_entries, 64)
        for _ in range(appends):
            log.place(LogRecord(RecordKind.COMMIT, 1, 0))
        assert log.tail == appends % num_entries
        assert log.parity == 1 ^ ((appends // num_entries) % 2)
        assert log.wrapped == (appends >= num_entries)
        assert log.appended == appends

    @given(appends=st.integers(1, 64))
    @settings(max_examples=30)
    def test_addresses_stay_in_region(self, appends):
        log = CircularLog(0x1000, 8, 64)
        for _ in range(appends):
            placed = log.place(LogRecord(RecordKind.COMMIT, 1, 0))
            assert log.base <= placed.addr < log.end
            assert placed.addr % 64 == 0x1000 % 64

    @given(appends=st.integers(0, 64))
    @settings(max_examples=30)
    def test_torn_bits_partition_ring(self, appends):
        """All entries of a pass share a torn value; the flip point is
        exactly the tail."""
        log = CircularLog(0x1000, 8, 64)
        payloads = {}
        for _ in range(appends):
            placed = log.place(LogRecord(RecordKind.COMMIT, 1, 0))
            payloads[placed.slot] = LogRecord.decode(placed.payload).torn
        if appends >= 8:
            current = {s: t for s, t in payloads.items()}
            tail = log.tail
            values = [current[s] for s in range(8)]
            # Slots [0, tail) carry the newest parity; [tail, 8) the older.
            assert len(set(values[:tail]) | set(values[tail:])) <= 2
            if 0 < tail < 8:
                assert values[0] != values[-1]
