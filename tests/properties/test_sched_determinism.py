"""Property-based determinism of the service layer.

Three layers of the same guarantee, at increasing cost:

* an open-loop schedule is a pure function of ``(TrafficConfig,
  num_shards)`` and satisfies its shape invariants for *any* seed,
  rate, and arrival process hypothesis picks;
* a single shard driven through the event-loop scheduler is
  bit-identical to the monolithic runner for hypothesis-chosen
  (benchmark, design, threads, txns) cells — the differential gate in
  ``tests/sched/test_shard_equivalence.py`` covers the fixed matrix,
  this covers the gaps between its grid points;
* a full ``repro serve`` run reproduces its report digest exactly.
"""

import dataclasses

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.design import DESIGNS, CANONICAL_DESIGNS
from repro.harness.runner import (
    RunConfig,
    prepare_workload,
    run_workload,
    run_workload_monolithic,
)
from repro.sched.serve import ServeConfig, run_serve
from repro.sched.traffic import TrafficConfig, open_loop_schedule
from repro.sim.config import NVDimmConfig
from repro.workloads import make_microbenchmark
from tests.conftest import tiny_system

traffic_configs = st.builds(
    TrafficConfig,
    requests=st.integers(0, 64),
    rate=st.sampled_from([0.001, 0.004, 0.02, 0.5]),
    arrival=st.sampled_from(["poisson", "uniform", "burst"]),
    burst_size=st.integers(1, 8),
    clients=st.integers(1, 1 << 20),
    seed=st.integers(0, 2**31 - 1),
)


class TestScheduleProperties:
    @given(config=traffic_configs, shards=st.integers(1, 8))
    @settings(max_examples=80, deadline=None)
    def test_schedule_is_a_pure_function_of_config(self, config, shards):
        assert open_loop_schedule(config, shards) == open_loop_schedule(
            config, shards
        )

    @given(config=traffic_configs, shards=st.integers(1, 8))
    @settings(max_examples=80, deadline=None)
    def test_shape_invariants(self, config, shards):
        schedule = open_loop_schedule(config, shards)
        assert [r.seq for r in schedule] == list(range(config.requests))
        arrivals = [r.arrival for r in schedule]
        assert arrivals == sorted(arrivals)
        for request in schedule:
            assert 0 <= request.client < config.clients
            assert request.shard == request.client % shards
            assert 0.0 <= request.key_u < 1.0
            assert 0.0 <= request.op_u < 1.0

    @given(config=traffic_configs)
    @settings(max_examples=40, deadline=None)
    def test_different_seeds_differ(self, config):
        if config.requests < 8:
            return  # too short to distinguish reliably
        other = dataclasses.replace(config, seed=config.seed + 1)
        a = open_loop_schedule(config, 4)
        b = open_loop_schedule(other, 4)
        assert [r.key_u for r in a] != [r.key_u for r in b]


_PREPARED = {}


def _prepared(name):
    if name not in _PREPARED:
        system = tiny_system(nvram=NVDimmConfig(size_bytes=16 * 1024 * 1024))
        _PREPARED[name] = prepare_workload(make_microbenchmark(name), system)
    return _PREPARED[name]


class TestSchedulerEquivalence:
    @given(
        benchmark=st.sampled_from(["hash", "sps", "btree"]),
        design=st.sampled_from(sorted(d.name for d in CANONICAL_DESIGNS)),
        threads=st.integers(1, 2),
        txns=st.integers(1, 6),
    )
    @settings(max_examples=25, deadline=None)
    def test_single_shard_scheduler_is_the_monolithic_runner(
        self, benchmark, design, threads, txns
    ):
        prepared = _prepared(benchmark)
        run = RunConfig(
            policy=DESIGNS.resolve(design),
            threads=threads,
            txns_per_thread=txns,
            system=prepared.system,
        )
        sched = run_workload(prepared.workload, run, prepared=prepared)
        mono = run_workload_monolithic(prepared.workload, run, prepared=prepared)
        try:
            assert dataclasses.asdict(sched.stats) == dataclasses.asdict(
                mono.stats
            )
            assert bytes(sched.machine.nvram.image) == bytes(
                mono.machine.nvram.image
            )
        finally:
            sched.machine.nvram.recycle()
            mono.machine.nvram.recycle()


class TestServeDeterminism:
    @given(
        seed=st.integers(0, 1000),
        arrival=st.sampled_from(["poisson", "uniform", "burst"]),
    )
    @settings(max_examples=5, deadline=None)
    def test_serve_report_digest_reproduces(self, seed, arrival):
        def go():
            return run_serve(
                ServeConfig(
                    workload="memcached",
                    shards=2,
                    threads=2,
                    traffic=TrafficConfig(
                        requests=12, rate=0.01, arrival=arrival, seed=seed
                    ),
                )
            )

        assert go().digest() == go().digest()
