"""Property test: static verdicts == dynamic psan verdicts.

The differential gate (``repro pstatic --differential``) checks the
structured microbenchmarks; this test attacks the same equivalence with
*randomized* op streams — the seeded-random accessor-op soup from the
replay-equivalence suite, swept across all eight canonical designs.
For every cell the statically-derived fired-rule set must equal the
dynamic checker's, and every static counterexample must replay to a
real dynamic diagnostic (relocated through the replay's symbolic
binding).  The tiny system's 128-entry log ring makes wrap-overwrite
reachable, so the record-count model is exercised too, not just the
ordering rules.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.design import CANONICAL_DESIGNS
from repro.harness.runner import prepare_workload
from repro.sanitizer.checker import run_psan
from repro.sanitizer.static import confirm_counterexample, run_pstatic
from tests.conftest import tiny_system
from tests.properties.test_replay_equivalence import RandomOpsWorkload

TXNS = 3


class TestStaticDifferential:
    @given(seed=st.integers(0, 2**20))
    @settings(max_examples=5, deadline=None, derandomize=True)
    def test_static_verdict_equals_dynamic(self, seed):
        workload = RandomOpsWorkload(seed=seed)
        system = tiny_system(num_cores=4)
        prepared = prepare_workload(workload, system)
        for threads in (1, 2):
            for design in CANONICAL_DESIGNS:
                static = run_pstatic(
                    workload.name,
                    design,
                    threads=threads,
                    txns_per_thread=TXNS,
                    prepared=prepared,
                    seed=seed,
                )
                dynamic = run_psan(
                    workload.name,
                    design,
                    threads=threads,
                    txns_per_thread=TXNS,
                    prepared=prepared,
                    seed=seed,
                )
                label = f"seed={seed} threads={threads} design={design.value}"
                assert static.rules_fired() == dynamic.rules_fired(), (
                    f"verdict drift: {label} static={static.rules_fired()} "
                    f"dynamic={dynamic.rules_fired()}"
                )
                assert set(static.rules_checked) == set(dynamic.rules_checked), label
                # Partitioned random streams share no words across
                # threads; a race here would be a detector false
                # positive.
                assert static.races is not None and static.races.clean, label
                for cex in static.counterexamples():
                    confirmed, diag = confirm_counterexample(
                        workload.name,
                        design,
                        cex,
                        threads=threads,
                        txns_per_thread=TXNS,
                        prepared=prepared,
                        seed=seed,
                    )
                    assert confirmed, (
                        f"unconfirmed counterexample: {label} "
                        f"{cex.rule} {cex.render()}"
                    )
