"""Property-based crash-consistency tests — the paper's core guarantee.

For any sequence of transactions and any crash instant, recovery must
produce exactly the committed prefix: every transaction whose commit was
durable at the crash is fully present (durability), every other
transaction is fully absent (atomicity).
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro import Machine, PersistentMemory, Policy, RecoveryManager
from repro.sim.config import LoggingConfig
from tests.conftest import tiny_system, word

GUARANTEED = [Policy.FWB, Policy.HWL, Policy.UNDO_CLWB, Policy.REDO_CLWB]

transactions = st.lists(
    st.lists(
        st.tuples(st.integers(0, 15), st.integers(1, 1 << 30)),  # (slot, value)
        min_size=1,
        max_size=4,
    ),
    min_size=1,
    max_size=12,
)


def run_and_crash(
    policy,
    txns,
    crash_fraction,
    log_entries=128,
    logging_overrides=None,
    nvram_overrides=None,
):
    logging = LoggingConfig(log_entries=log_entries, **(logging_overrides or {}))
    system = tiny_system(logging=logging)
    if nvram_overrides:
        from dataclasses import replace

        system = system.scaled(nvram=replace(system.nvram, **nvram_overrides))
    machine = Machine(system, policy)
    pm = PersistentMemory(machine)
    api = pm.api(0)
    slots = [pm.heap.alloc(8) for _ in range(16)]
    for addr in slots:
        pm.setup_write(addr, word(0))
    for txn in txns:
        with api.transaction():
            for slot, value in txn:
                api.write(slots[slot], word(value))
            api.compute(5)
    horizon = max(api.now, max((t for t, _ in pm.golden.commits), default=0.0))
    crash_time = horizon * crash_fraction
    machine.crash(at_time=crash_time)
    from repro.core.multilog import recover_all

    recover_all(machine.nvram, machine.logs)
    expected = pm.golden.expected_at(crash_time)
    for i, addr in enumerate(slots):
        want = expected.get(addr, word(0))
        got = machine.nvram.peek(addr, 8)
        assert got == want, (
            f"{policy.value}: slot {i} = {got.hex()} want {want.hex()} "
            f"at crash {crash_time:.1f}"
        )


@settings(max_examples=25, deadline=None)
@given(txns=transactions, crash_fraction=st.floats(0.0, 1.0))
def test_fwb_crash_consistency(txns, crash_fraction):
    run_and_crash(Policy.FWB, txns, crash_fraction)


@settings(max_examples=25, deadline=None)
@given(txns=transactions, crash_fraction=st.floats(0.0, 1.0))
def test_hwl_crash_consistency(txns, crash_fraction):
    run_and_crash(Policy.HWL, txns, crash_fraction)


@settings(max_examples=20, deadline=None)
@given(txns=transactions, crash_fraction=st.floats(0.0, 1.0))
def test_undo_clwb_crash_consistency(txns, crash_fraction):
    run_and_crash(Policy.UNDO_CLWB, txns, crash_fraction)


@settings(max_examples=20, deadline=None)
@given(txns=transactions, crash_fraction=st.floats(0.0, 1.0))
def test_redo_clwb_crash_consistency(txns, crash_fraction):
    run_and_crash(Policy.REDO_CLWB, txns, crash_fraction)


@settings(max_examples=15, deadline=None)
@given(txns=transactions, crash_fraction=st.floats(0.2, 1.0))
def test_fwb_crash_consistency_with_tiny_wrapping_log(txns, crash_fraction):
    """Same guarantee with a 16-entry log that wraps constantly, forcing
    the wrap-protection path."""
    run_and_crash(Policy.FWB, txns, crash_fraction, log_entries=16)


@settings(max_examples=15, deadline=None)
@given(txns=transactions, crash_fraction=st.floats(0.0, 1.0))
def test_fwb_crash_consistency_with_log_grow(txns, crash_fraction):
    """Same guarantee with log_grow() enabled on a tiny log, so active
    transactions trigger region growth."""
    run_and_crash(
        Policy.FWB,
        txns,
        crash_fraction,
        log_entries=16,
        logging_overrides={"enable_log_grow": True},
    )


@settings(max_examples=15, deadline=None)
@given(txns=transactions, crash_fraction=st.floats(0.0, 1.0))
def test_fwb_crash_consistency_with_distributed_logs(txns, crash_fraction):
    """Same guarantee over per-thread distributed rings."""
    run_and_crash(
        Policy.FWB,
        txns,
        crash_fraction,
        log_entries=128,
        logging_overrides={"distributed_logs": 2},
    )


@settings(max_examples=15, deadline=None)
@given(
    txns=transactions,
    crash_fraction=st.floats(0.0, 1.0),
    policy=st.sampled_from([Policy.FWB, Policy.UNDO_CLWB]),
)
def test_crash_consistency_under_adr(txns, crash_fraction, policy):
    """With an ADR persist domain, durability moves to controller
    acceptance — the golden model, fences, and crash journal must stay
    mutually consistent."""
    run_and_crash(policy, txns, crash_fraction, nvram_overrides={"adr_persist_domain": True})
