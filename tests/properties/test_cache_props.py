"""Property-based tests for cache and hierarchy invariants."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.cache import SetAssociativeCache
from repro.sim.config import CacheConfig
from repro import Machine, Policy
from repro.sim.microops import Load, Store
from tests.conftest import tiny_system

LINE = 64
# A tiny cache: 2 sets x 2 ways.
SMALL = CacheConfig(size_bytes=256, ways=2)

ops = st.lists(
    st.tuples(st.integers(0, 15), st.booleans()),  # (line index, is_insert)
    min_size=1,
    max_size=60,
)


class TestCacheModel:
    @given(trace=ops)
    @settings(max_examples=60)
    def test_occupancy_never_exceeds_capacity(self, trace):
        cache = SetAssociativeCache(SMALL, "prop")
        now = 0.0
        for index, is_insert in trace:
            addr = index * LINE
            if is_insert and cache.lookup(addr) is None:
                cache.insert(addr, bytes(LINE), now)
            else:
                cache.invalidate(addr)
            now += 1.0
            assert cache.occupancy <= 4
            for bucket_lines in [list(cache.iter_lines())]:
                addrs = [line.addr for line in bucket_lines]
                assert len(addrs) == len(set(addrs))

    @given(trace=ops)
    @settings(max_examples=60)
    def test_most_recent_line_survives(self, trace):
        """LRU: the line touched last in a set is never the victim."""
        cache = SetAssociativeCache(SMALL, "prop")
        now = 0.0
        last_inserted = None
        for index, _ in trace:
            addr = index * LINE
            if cache.lookup(addr) is None:
                cache.insert(addr, bytes(LINE), now)
            else:
                cache.touch(cache.lookup(addr), now)
            last_inserted = addr
            now += 1.0
            assert cache.lookup(last_inserted) is not None


word_addrs = st.integers(0, 127).map(lambda i: 0x2000 + i * 8)
accesses = st.lists(
    st.tuples(word_addrs, st.integers(0, 255), st.booleans()),
    min_size=1,
    max_size=80,
)


class TestHierarchyFunctionalEquivalence:
    @given(trace=accesses)
    @settings(max_examples=40, deadline=None)
    def test_hierarchy_matches_flat_memory(self, trace):
        """Loads through the hierarchy always return what a flat memory
        model would, regardless of evictions and write-backs."""
        machine = Machine(tiny_system(), Policy.NON_PERS)
        model = {}
        for addr, value, is_store in trace:
            if is_store:
                data = bytes([value] * 8)
                machine.execute(0, Store(addr, data))
                model[addr] = data
            else:
                seen = machine.execute(0, Load(addr, 8))
                assert seen == model.get(addr, bytes(8))

    @given(trace=accesses)
    @settings(max_examples=20, deadline=None)
    def test_flush_all_makes_nvram_match_model(self, trace):
        machine = Machine(tiny_system(), Policy.NON_PERS)
        model = {}
        for addr, value, is_store in trace:
            if is_store:
                data = bytes([value] * 8)
                machine.execute(0, Store(addr, data))
                model[addr] = data
        machine.hierarchy.flush_all(machine.core_time(0))
        for addr, data in model.items():
            assert machine.nvram.peek(addr, 8) == data
