"""Property-based timing invariants: no time travel, monotone resources."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.config import EnergyConfig, MemCtrlConfig, NVDimmConfig
from repro.sim.energy import EnergyModel
from repro.sim.memctrl import MemoryController
from repro.sim.nvram import NVRAM
from repro.sim.stats import MachineStats
from repro import Machine, Policy
from repro.sim.microops import CLWB, Compute, Fence, Load, Store
from tests.conftest import tiny_system


def make_mc():
    stats = MachineStats()
    nvram_config = NVDimmConfig(size_bytes=1024 * 1024)
    nvram = NVRAM(nvram_config)
    mc = MemoryController(
        MemCtrlConfig(), nvram_config, nvram, EnergyModel(EnergyConfig(), stats), stats, 2.5
    )
    return mc


requests = st.lists(
    st.tuples(
        st.integers(0, 255),      # line index
        st.booleans(),            # is_write
        st.floats(0.0, 50.0),     # inter-arrival gap
    ),
    min_size=1,
    max_size=100,
)


class TestMemoryControllerInvariants:
    @given(trace=requests)
    @settings(max_examples=60)
    def test_no_time_travel(self, trace):
        """No access finishes before it was issued (plus queue latency)."""
        mc = make_mc()
        now = 0.0
        for line, is_write, gap in trace:
            now += gap
            addr = line * 64
            if is_write:
                ticket = mc.write(addr, bytes(64), now)
                assert ticket.accepted >= now
                assert ticket.completion >= ticket.accepted
            else:
                finish, _ = mc.read(addr, 64, now)
                assert finish > now

    @given(trace=requests)
    @settings(max_examples=40)
    def test_bank_occupancy_monotone(self, trace):
        """Per-bank read/write next-free times never move backwards."""
        mc = make_mc()
        now = 0.0
        previous = (list(mc.nvram.bank_read_free), list(mc.nvram.bank_write_free))
        for line, is_write, gap in trace:
            now += gap
            addr = line * 64
            if is_write:
                mc.write(addr, bytes(64), now)
            else:
                mc.read(addr, 64, now)
            current = (list(mc.nvram.bank_read_free), list(mc.nvram.bank_write_free))
            for old_bank, new_bank in zip(previous[0] + previous[1],
                                          current[0] + current[1]):
                assert new_bank >= old_bank
            previous = current

    @given(trace=requests)
    @settings(max_examples=40)
    def test_same_address_write_completions_ordered(self, trace):
        """Writes to one address become durable in issue order — the
        property the crash journal's suffix-revert relies on."""
        mc = make_mc()
        now = 0.0
        completions = {}
        for line, _is_write, gap in trace:
            now += gap
            addr = (line % 4) * 64  # concentrate on four addresses
            ticket = mc.write(addr, bytes(64), now)
            history = completions.setdefault(addr, [])
            if history:
                assert ticket.completion >= history[-1]
            history.append(ticket.completion)


core_ops = st.lists(
    st.tuples(st.integers(0, 31), st.sampled_from(["load", "store", "clwb", "fence", "compute"])),
    min_size=1,
    max_size=60,
)


class TestCoreClockInvariants:
    @given(trace=core_ops)
    @settings(max_examples=40, deadline=None)
    def test_core_clock_never_decreases(self, trace):
        machine = Machine(tiny_system(), Policy.FWB)
        machine.execute(0, Compute(1))
        last = machine.core_time(0)
        for slot, kind in trace:
            addr = 0x2000 + slot * 64
            if kind == "load":
                machine.execute(0, Load(addr, 8))
            elif kind == "store":
                machine.execute(0, Store(addr, bytes(8)))
            elif kind == "clwb":
                machine.execute(0, CLWB(addr))
            elif kind == "fence":
                machine.execute(0, Fence())
            else:
                machine.execute(0, Compute(3))
            now = machine.core_time(0)
            assert now >= last
            last = now
