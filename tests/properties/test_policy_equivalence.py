"""Differential testing: all eight designs compute the same values.

Persistence policies differ in *when* data becomes durable and what the
log contains — never in the values the program observes or the final
flushed memory image.  Any divergence is a simulator bug (this class of
test caught a real coherence bug during development).
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro import Machine, PersistentMemory, Policy
from tests.conftest import tiny_system, word

operations = st.lists(
    st.tuples(
        st.integers(0, 11),           # slot
        st.integers(0, (1 << 32) - 1),  # value
        st.booleans(),                # read-back inside the transaction?
    ),
    min_size=1,
    max_size=10,
)
txn_lists = st.lists(operations, min_size=1, max_size=8)


def run_policy(policy, txns):
    machine = Machine(tiny_system(), policy)
    pm = PersistentMemory(machine)
    api = pm.api(0)
    slots = [pm.heap.alloc(8) for _ in range(12)]
    observations = []
    for txn in txns:
        with api.transaction():
            for slot, value, read_back in txn:
                api.write(slots[slot], word(value))
                if read_back:
                    observations.append(api.read(slots[slot], 8))
    machine.hierarchy.flush_all(machine.core_time(0))
    image = bytes(machine.nvram.peek(slots[0], 12 * 8))
    return observations, image


@settings(max_examples=20, deadline=None)
@given(txns=txn_lists)
def test_all_policies_functionally_equivalent(txns):
    reference = run_policy(Policy.NON_PERS, txns)
    for policy in Policy:
        if policy is Policy.NON_PERS:
            continue
        assert run_policy(policy, txns) == reference, policy.value


@settings(max_examples=10, deadline=None)
@given(txns=txn_lists)
def test_canonical_specs_reproduce_legacy_policies(txns):
    """Every canonical DesignSpec drives the machine exactly like the
    legacy Policy member it replaced — same observations, same image."""
    from repro.core.design import DESIGNS

    for policy in Policy:
        spec = DESIGNS.get(policy.value)
        assert run_policy(spec, txns) == run_policy(policy, txns), policy.value


@settings(max_examples=10, deadline=None)
@given(txns=txn_lists)
def test_custom_specs_functionally_equivalent(txns):
    """Off-grid mechanism compositions still compute the same values —
    mechanisms change timing and durability, never program semantics."""
    from repro.core.design import parse_design

    reference = run_policy(Policy.NON_PERS, txns)
    for text in ("hw+undo+clwb", "sw+redo+fwb", "sw+undo+redo+clwb", "hw+redo+fwb"):
        assert run_policy(parse_design(text), txns) == reference, text


@settings(max_examples=10, deadline=None)
@given(txns=txn_lists)
def test_grow_and_distributed_match_centralized(txns):
    from repro.sim.config import LoggingConfig

    def run_with(logging):
        machine = Machine(tiny_system(logging=logging), Policy.FWB)
        pm = PersistentMemory(machine)
        api = pm.api(0)
        slots = [pm.heap.alloc(8) for _ in range(12)]
        for txn in txns:
            with api.transaction():
                for slot, value, _rb in txn:
                    api.write(slots[slot], word(value))
        machine.hierarchy.flush_all(machine.core_time(0))
        return bytes(machine.nvram.peek(slots[0], 12 * 8))

    centralized = run_with(LoggingConfig(log_entries=128))
    grown = run_with(LoggingConfig(log_entries=16, enable_log_grow=True))
    distributed = run_with(LoggingConfig(log_entries=128, distributed_logs=2))
    assert grown == centralized
    assert distributed == centralized
