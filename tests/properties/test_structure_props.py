"""Property-based tests for the persistent data structures."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro import Policy
from repro.workloads.base import SetupAccessor
from repro.workloads.btree import BTreeWorkload
from repro.workloads.hashtable import HashTableWorkload
from repro.workloads.rbtree import RBTreeWorkload
from repro.txn.heap import PersistentHeap
from tests.conftest import make_pm

key_ops = st.lists(st.integers(0, 47), min_size=1, max_size=120)


def fresh(workload_cls, **kwargs):
    pm = make_pm(Policy.NON_PERS)
    workload = workload_cls(seed=1, **kwargs)
    workload.setup(pm)
    return pm, workload, SetupAccessor(pm)


class TestRBTreeProperties:
    @given(keys=key_ops)
    @settings(max_examples=30, deadline=None)
    def test_toggle_semantics_and_invariants(self, keys):
        _pm, w, acc = fresh(RBTreeWorkload, keys_per_partition=48)
        model = set(w._resident[0])
        for key in keys:
            if key in model:
                assert w.delete(acc, 0, key)
                model.discard(key)
            else:
                assert w.insert(acc, 0, key, b"v" * 8)
                model.add(key)
        assert w.inorder_keys(acc, 0) == sorted(model)
        w.check_invariants(acc, 0)


class TestBTreeProperties:
    @given(keys=key_ops)
    @settings(max_examples=30, deadline=None)
    def test_toggle_semantics_and_invariants(self, keys):
        _pm, w, acc = fresh(BTreeWorkload, keys_per_partition=48)
        model = set(w._resident[0])
        for key in keys:
            if key in model:
                assert w.delete(acc, 0, key)
                model.discard(key)
            else:
                assert w.insert(acc, 0, key, b"v" * 8)
                model.add(key)
        assert w.all_keys(acc, 0) == sorted(model)
        w.check_invariants(acc, 0)


class TestHashProperties:
    @given(keys=key_ops)
    @settings(max_examples=30, deadline=None)
    def test_toggle_semantics(self, keys):
        _pm, w, acc = fresh(
            HashTableWorkload, keys_per_partition=48, buckets_per_partition=8
        )
        model = set(w._resident[0])
        for key in keys:
            if key in model:
                w._remove(acc, 0, key)
                model.discard(key)
            else:
                w._insert(acc, 0, key, b"v" * 8)
                model.add(key)
        for key in range(48):
            assert (w.lookup(acc, 0, key) != b"") == (key in model)


class TestHeapProperties:
    @given(
        sizes=st.lists(st.integers(1, 256), min_size=1, max_size=60),
        free_mask=st.lists(st.booleans(), min_size=60, max_size=60),
    )
    @settings(max_examples=50)
    def test_live_allocations_never_overlap(self, sizes, free_mask):
        heap = PersistentHeap(0x1000, 0x40000)
        live = []
        from repro.utils import align_up

        for size, do_free in zip(sizes, free_mask):
            addr = heap.alloc(size)
            aligned = align_up(size, 8)
            for other_addr, other_size in live:
                assert addr + aligned <= other_addr or other_addr + other_size <= addr
            if do_free:
                heap.free(addr, size)
            else:
                live.append((addr, aligned))
