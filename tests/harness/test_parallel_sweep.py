"""Parallel sweep execution: determinism, prepared-state shipping, and
the self-healing retry/fallback machinery."""

import pickle

from repro import Policy
from repro.harness.parallel import ENV_FAULT_DIR, SweepHealth
from repro.harness.runner import (
    RunConfig,
    prepare_workload,
    run_workload,
)
from repro.harness.sweep import run_micro_sweep
from repro.workloads.hashtable import HashTableWorkload
from tests.conftest import tiny_system

POLICIES = (Policy.NON_PERS, Policy.UNDO_CLWB, Policy.FWB)


def small_workload(seed=1):
    return HashTableWorkload(
        seed=seed, buckets_per_partition=16, keys_per_partition=64
    )


def small_factory(name):
    return small_workload()


def sweep_kwargs(**overrides):
    kw = dict(
        benchmarks=("hash",),
        threads=(1, 2),
        policies=POLICIES,
        txns_per_thread=15,
        system=tiny_system(),
        workload_factory=small_factory,
    )
    kw.update(overrides)
    return kw


class TestParallelDeterminism:
    def test_jobs2_bit_identical_to_serial(self):
        serial = run_micro_sweep(**sweep_kwargs())
        parallel = run_micro_sweep(**sweep_kwargs(), jobs=2)
        assert list(parallel.cells) == list(serial.cells)  # canonical order
        for cell in serial.cells:
            assert parallel.cells[cell] == serial.cells[cell], cell

    def test_jobs1_uses_in_process_loop(self):
        # jobs=1 must not spin up a pool: identical results and the
        # parallel module is never imported into the sweep path.
        result = run_micro_sweep(**sweep_kwargs(), jobs=1)
        assert len(result.cells) == 2 * len(POLICIES)


class TestPreparedShipping:
    def test_pickle_round_trip_restores_image(self):
        prepared = prepare_workload(small_workload(), tiny_system())
        clone = pickle.loads(pickle.dumps(prepared))
        assert clone.image == prepared.image
        assert clone.heap_state == prepared.heap_state
        assert clone.workload.identity_key() == prepared.workload.identity_key()

    def test_pickled_prepared_runs_identically(self):
        prepared = prepare_workload(small_workload(), tiny_system())
        clone = pickle.loads(pickle.dumps(prepared))
        run = RunConfig(
            policy=Policy.FWB, threads=2, txns_per_thread=15, system=tiny_system()
        )
        # The clone is a different object with the same identity key —
        # exactly what a worker process sees.
        direct = run_workload(small_workload(), run, prepared=prepared).stats
        shipped = run_workload(small_workload(), run, prepared=clone).stats
        assert shipped == direct

    def test_equivalent_fresh_workload_accepted(self):
        # Identity is by configuration, not object id: a fresh workload
        # with equal public attributes may use the prepared state.
        prepared = prepare_workload(small_workload(), tiny_system())
        outcome = run_workload(
            small_workload(),
            RunConfig(
                policy=Policy.HWL, threads=1, txns_per_thread=10, system=tiny_system()
            ),
            prepared=prepared,
        )
        assert outcome.stats.transactions_committed == 10


class TestSelfHealing:
    """Injected worker faults must heal without changing any result.

    The fault hook (``REPRO_SWEEP_FAULT_DIR``) is consulted only by
    worker processes, so the serial baseline and the serial fallback are
    immune by construction; every healed sweep must therefore be
    bit-identical to the clean serial run.
    """

    def _serial_baseline(self):
        return run_micro_sweep(**sweep_kwargs())

    def test_worker_death_is_retried_bit_identical(self, tmp_path, monkeypatch):
        monkeypatch.setenv(ENV_FAULT_DIR, str(tmp_path))
        # Exactly one death: the worker consumes the file before dying,
        # so the retry round runs the cell cleanly.
        (tmp_path / "kill-hash-1-fwb").touch()
        health = SweepHealth()
        healed = run_micro_sweep(
            **sweep_kwargs(), jobs=2, retry_backoff=0.05, health=health
        )
        serial = self._serial_baseline()
        assert list(healed.cells) == list(serial.cells)
        for cell in serial.cells:
            assert healed.cells[cell] == serial.cells[cell], cell
        assert health.worker_deaths >= 1
        assert health.retry_rounds >= 1
        assert health.serial_fallback_cells == 0
        assert health.degraded
        assert "worker death" in health.summary()

    def test_hung_worker_recovers_serially(self, tmp_path, monkeypatch):
        monkeypatch.setenv(ENV_FAULT_DIR, str(tmp_path))
        # The hang file persists, so every pool attempt wedges on this
        # cell; only the serial fallback (which skips the hook) finishes.
        (tmp_path / "hang-hash-1-fwb").touch()
        health = SweepHealth()
        healed = run_micro_sweep(
            **sweep_kwargs(),
            jobs=2,
            cell_timeout=1.0,
            max_retries=0,
            health=health,
        )
        serial = self._serial_baseline()
        for cell in serial.cells:
            assert healed.cells[cell] == serial.cells[cell], cell
        assert health.timeouts >= 1
        assert health.serial_fallback_cells == 1

    def test_health_merge_and_clean_summary(self):
        health = SweepHealth()
        assert not health.degraded
        assert "clean" in health.summary()
        other = SweepHealth(worker_deaths=1, timeouts=2, retry_rounds=3)
        health.merge(other)
        assert (health.worker_deaths, health.timeouts, health.retry_rounds) == (
            1,
            2,
            3,
        )
