"""Parallel sweep execution: determinism and prepared-state shipping."""

import pickle

from repro import Policy
from repro.harness.runner import (
    RunConfig,
    prepare_workload,
    run_workload,
)
from repro.harness.sweep import run_micro_sweep
from repro.workloads.hashtable import HashTableWorkload
from tests.conftest import tiny_system

POLICIES = (Policy.NON_PERS, Policy.UNDO_CLWB, Policy.FWB)


def small_workload(seed=1):
    return HashTableWorkload(
        seed=seed, buckets_per_partition=16, keys_per_partition=64
    )


def small_factory(name):
    return small_workload()


def sweep_kwargs(**overrides):
    kw = dict(
        benchmarks=("hash",),
        threads=(1, 2),
        policies=POLICIES,
        txns_per_thread=15,
        system=tiny_system(),
        workload_factory=small_factory,
    )
    kw.update(overrides)
    return kw


class TestParallelDeterminism:
    def test_jobs2_bit_identical_to_serial(self):
        serial = run_micro_sweep(**sweep_kwargs())
        parallel = run_micro_sweep(**sweep_kwargs(), jobs=2)
        assert list(parallel.cells) == list(serial.cells)  # canonical order
        for cell in serial.cells:
            assert parallel.cells[cell] == serial.cells[cell], cell

    def test_jobs1_uses_in_process_loop(self):
        # jobs=1 must not spin up a pool: identical results and the
        # parallel module is never imported into the sweep path.
        result = run_micro_sweep(**sweep_kwargs(), jobs=1)
        assert len(result.cells) == 2 * len(POLICIES)


class TestPreparedShipping:
    def test_pickle_round_trip_restores_image(self):
        prepared = prepare_workload(small_workload(), tiny_system())
        clone = pickle.loads(pickle.dumps(prepared))
        assert clone.image == prepared.image
        assert clone.heap_state == prepared.heap_state
        assert clone.workload.identity_key() == prepared.workload.identity_key()

    def test_pickled_prepared_runs_identically(self):
        prepared = prepare_workload(small_workload(), tiny_system())
        clone = pickle.loads(pickle.dumps(prepared))
        run = RunConfig(
            policy=Policy.FWB, threads=2, txns_per_thread=15, system=tiny_system()
        )
        # The clone is a different object with the same identity key —
        # exactly what a worker process sees.
        direct = run_workload(small_workload(), run, prepared=prepared).stats
        shipped = run_workload(small_workload(), run, prepared=clone).stats
        assert shipped == direct

    def test_equivalent_fresh_workload_accepted(self):
        # Identity is by configuration, not object id: a fresh workload
        # with equal public attributes may use the prepared state.
        prepared = prepare_workload(small_workload(), tiny_system())
        outcome = run_workload(
            small_workload(),
            RunConfig(
                policy=Policy.HWL, threads=1, txns_per_thread=10, system=tiny_system()
            ),
            prepared=prepared,
        )
        assert outcome.stats.transactions_committed == 10
