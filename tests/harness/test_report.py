"""Tests for the report formatting helpers."""

import pytest

from repro.harness.report import bench_label, format_table, geomean, reduction, speedup


class TestFormatTable:
    def test_contains_title_headers_rows(self):
        text = format_table("My Table", ["a", "b"], [[1, 2.5], ["x", 3.0]])
        assert "My Table" in text
        assert "a" in text and "b" in text
        assert "2.50" in text and "3.00" in text

    def test_column_alignment(self):
        text = format_table("T", ["col"], [["looooooong"], ["s"]])
        lines = text.splitlines()
        assert len(lines[-1]) <= len(lines[-2])

    def test_custom_float_format(self):
        text = format_table("T", ["v"], [[0.123456]], float_format="{:.4f}")
        assert "0.1235" in text


class TestRatios:
    def test_speedup(self):
        assert speedup(2.0, 1.0) == 2.0

    def test_speedup_zero_baseline(self):
        assert speedup(2.0, 0.0) == 0.0

    def test_reduction(self):
        assert reduction(4.0, 2.0) == 2.0

    def test_reduction_zero_value(self):
        assert reduction(4.0, 0.0) == 0.0

    def test_geomean(self):
        assert geomean([1.0, 4.0]) == pytest.approx(2.0)

    def test_geomean_empty(self):
        assert geomean([]) == 0.0

    def test_geomean_nonpositive(self):
        assert geomean([1.0, 0.0]) == 0.0


class TestLabels:
    def test_with_threads(self):
        assert bench_label("hash", 2) == "hash-2t"

    def test_without_threads(self):
        assert bench_label("ycsb", None) == "ycsb"
