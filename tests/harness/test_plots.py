"""Tests for the terminal chart helpers."""

import pytest

from repro.harness.experiments import ExperimentResult
from repro.harness.plots import FULL, bar, figure_chart, grouped_bars, series_chart


class TestBar:
    def test_full_scale(self):
        assert bar(10, 10, width=4) == FULL * 4

    def test_half_scale(self):
        assert bar(5, 10, width=4) == FULL * 2

    def test_zero(self):
        assert bar(0, 10) == ""

    def test_overflow_clamped(self):
        assert bar(100, 10, width=4) == FULL * 4

    def test_fractional_eighths(self):
        rendered = bar(1.5, 4, width=4)  # 1.5 cells
        assert rendered.startswith(FULL)
        assert len(rendered) == 2


class TestGroupedBars:
    def test_structure(self):
        chart = grouped_bars(
            "Demo",
            {"hash-1t": {"non-pers": 1.4, "fwb": 1.1}},
            baseline="non-pers",
        )
        assert "Demo" in chart
        assert "hash-1t" in chart
        assert "1.40 *" in chart
        assert "fwb" in chart

    def test_infinite_values_render(self):
        chart = grouped_bars("Demo", {"g": {"a": float("inf"), "b": 1.0}})
        assert "inf" in chart

    def test_scale_ignores_infinity(self):
        chart = grouped_bars("Demo", {"g": {"a": float("inf"), "b": 2.0}})
        # b at max finite scale gets a full-width bar.
        assert FULL * 40 in chart


class TestSeriesChart:
    def test_points_rendered(self):
        chart = series_chart("Sizes", [(8, 1.1), (16, 1.2)], x_label="entries")
        assert " 8 " in chart
        assert "1.20" in chart
        assert "entries" in chart


class TestFigureChart:
    def test_from_experiment_result(self):
        result = ExperimentResult(
            "Figure X",
            ["benchmark", "non-pers", "fwb"],
            [["hash-1t", 1.4, 1.1], ["sps-1t", 1.2, 1.05]],
        )
        chart = figure_chart(result)
        assert "Figure X" in chart
        assert "hash-1t" in chart and "sps-1t" in chart
        assert chart.count("|") >= 8

    def test_skips_non_numeric_cells(self):
        result = ExperimentResult(
            "T", ["k", "v", "note"], [["row", 1.0, "text"]]
        )
        chart = figure_chart(result)
        assert "text" not in chart
