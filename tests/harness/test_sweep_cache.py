"""Sweep result cache: keys, round-trips, invalidation, sweep wiring."""

import dataclasses
import json

import pytest

from repro import Policy
from repro.harness.cache import (
    SweepCache,
    cache_enabled,
    stats_from_dict,
    stats_to_dict,
)
from repro.harness.runner import default_experiment_config
from repro.harness.sweep import SweepResult, run_micro_sweep
from repro.sim.stats import MachineStats
from repro.workloads.hashtable import HashTableWorkload
from tests.conftest import tiny_system

POLICIES = (Policy.NON_PERS, Policy.FWB)


def small_workload(seed=1, **overrides):
    params = dict(buckets_per_partition=16, keys_per_partition=64)
    params.update(overrides)
    return HashTableWorkload(seed=seed, **params)


def small_factory(name):
    return small_workload()


def sweep_kwargs(**overrides):
    kw = dict(
        benchmarks=("hash",),
        threads=(1,),
        policies=POLICIES,
        txns_per_thread=20,
        system=tiny_system(),
        workload_factory=small_factory,
    )
    kw.update(overrides)
    return kw


def sample_stats():
    return MachineStats(
        instructions=1234,
        cycles=5678.5,
        transactions_committed=20,
        nvram_write_bytes=4096,
        energy_nvram_pj=12.25,
        per_core_instructions={0: 600, 1: 634},
        per_core_cycles={0: 2800.25, 1: 2878.25},
    )


class TestStatsRoundTrip:
    def test_json_round_trip_is_equal(self):
        stats = sample_stats()
        wire = json.loads(json.dumps(stats_to_dict(stats)))
        assert stats_from_dict(wire) == stats

    def test_per_core_keys_restored_as_ints(self):
        wire = json.loads(json.dumps(stats_to_dict(sample_stats())))
        assert list(wire["per_core_instructions"]) == ["0", "1"]  # JSON stringifies
        restored = stats_from_dict(wire)
        assert list(restored.per_core_instructions) == [0, 1]
        assert list(restored.per_core_cycles) == [0, 1]

    def test_unknown_fields_ignored(self):
        wire = stats_to_dict(sample_stats())
        wire["field_from_the_future"] = 7
        assert stats_from_dict(wire) == sample_stats()


class TestSweepCacheKeys:
    def setup_method(self):
        self.system = default_experiment_config()
        self.cache = SweepCache("unused")

    def base_key(self, **overrides):
        params = dict(
            system=self.system,
            policy=Policy.FWB,
            workload=small_workload(),
            threads=1,
            txns_per_thread=20,
        )
        params.update(overrides)
        return self.cache.key(
            params["system"],
            params["policy"],
            params["workload"],
            params["threads"],
            params["txns_per_thread"],
        )

    def test_key_is_stable(self):
        assert self.base_key() == self.base_key()

    def test_key_covers_every_input(self):
        base = self.base_key()
        assert self.base_key(policy=Policy.NON_PERS) != base
        assert self.base_key(threads=2) != base
        assert self.base_key(txns_per_thread=21) != base
        assert self.base_key(workload=small_workload(seed=2)) != base
        assert self.base_key(workload=small_workload(keys_per_partition=65)) != base
        assert (
            self.base_key(system=self.system.scaled(num_cores=4)) != base
        )

    def test_key_uses_design_mechanisms_not_name(self):
        # A canonical design and an anonymous spec with identical
        # mechanisms must share entries: same simulation, same stats.
        from repro.core.design import parse_design

        assert self.base_key(policy=parse_design("hw+undo+redo+fwb")) == self.base_key()

    def test_specs_differing_only_in_writeback_never_collide(self):
        from repro.core.design import parse_design

        clwb = self.base_key(policy=parse_design("hw+undo+redo+clwb"))
        fwb = self.base_key(policy=parse_design("hw+undo+redo+fwb"))
        nowb = self.base_key(policy=parse_design("hw+undo+redo+nowb"))
        assert len({clwb, fwb, nowb}) == 3

    def test_custom_spec_string_key_matches_spec_key(self):
        assert self.base_key(policy="hw+undo+redo+fwb") == self.base_key()

    def test_salt_bump_invalidates(self):
        other = SweepCache("unused", salt="sweep-v2-different")
        assert other.key(
            self.system, Policy.FWB, small_workload(), 1, 20
        ) != self.base_key()


class TestSweepCacheStore:
    def test_get_put_round_trip(self, tmp_path):
        cache = SweepCache(tmp_path)
        key = "k" * 64
        assert cache.get(key) is None
        cache.put(key, sample_stats())
        assert cache.get(key) == sample_stats()
        assert (cache.hits, cache.misses, cache.stores) == (1, 1, 1)

    def test_corrupt_entry_is_a_miss(self, tmp_path, capsys):
        cache = SweepCache(tmp_path)
        key = "k" * 64
        cache.put(key, sample_stats())
        (tmp_path / f"{key}.json").write_text("{not json")
        assert cache.get(key) is None
        assert cache.misses == 1
        assert cache.corrupt == 1
        assert "corrupt sweep-cache entry" in capsys.readouterr().err
        # A fresh store overwrites the rotten entry and serves again.
        cache.put(key, sample_stats())
        assert cache.get(key) == sample_stats()
        assert cache.corrupt == 1
        assert "corrupt entr" in cache.summary()

    def test_truncated_entry_counts_corrupt(self, tmp_path, capsys):
        # Torn write: valid JSON but the stats payload is missing.
        cache = SweepCache(tmp_path)
        key = "t" * 64
        (tmp_path / f"{key}.json").write_text('{"salt": "sweep-v1"}')
        assert cache.get(key) is None
        assert (cache.corrupt, cache.misses) == (1, 1)
        assert "recomputing" in capsys.readouterr().err

    def test_plain_miss_is_not_corrupt(self, tmp_path, capsys):
        cache = SweepCache(tmp_path)
        assert cache.get("m" * 64) is None
        assert (cache.corrupt, cache.misses) == (0, 1)
        assert capsys.readouterr().err == ""
        assert "corrupt entr" not in cache.summary()

    def test_clear_removes_entries(self, tmp_path):
        cache = SweepCache(tmp_path)
        cache.put("a" * 64, sample_stats())
        cache.put("b" * 64, sample_stats())
        assert cache.clear() == 2
        assert cache.get("a" * 64) is None

    def test_hit_rate(self, tmp_path):
        cache = SweepCache(tmp_path)
        assert cache.hit_rate == 0.0
        cache.put("a" * 64, sample_stats())
        cache.get("a" * 64)
        cache.get("b" * 64)
        assert cache.hit_rate == 0.5

    def test_env_off_switch(self, monkeypatch):
        monkeypatch.delenv("REPRO_SWEEP_CACHE", raising=False)
        assert cache_enabled()
        monkeypatch.setenv("REPRO_SWEEP_CACHE", "0")
        assert not cache_enabled()
        monkeypatch.setenv("REPRO_SWEEP_CACHE", "off")
        assert not cache_enabled()
        monkeypatch.setenv("REPRO_SWEEP_CACHE", "1")
        assert cache_enabled()


class TestSweepWithCache:
    def test_cold_then_warm(self, tmp_path):
        cache = SweepCache(tmp_path)
        cold = run_micro_sweep(**sweep_kwargs(), cache=cache)
        assert cache.hits == 0
        assert cache.misses == len(cold.cells)
        assert cache.stores == len(cold.cells)
        warm = run_micro_sweep(**sweep_kwargs(), cache=cache)
        assert cache.hits == len(cold.cells)
        assert warm.cells == cold.cells
        assert list(warm.cells) == list(cold.cells)  # canonical order kept

    def test_full_hit_skips_preparation(self, tmp_path, monkeypatch):
        cache = SweepCache(tmp_path)
        run_micro_sweep(**sweep_kwargs(), cache=cache)

        def boom(*args, **kwargs):  # pragma: no cover - must not run
            raise AssertionError("prepare_workload called on a fully cached sweep")

        monkeypatch.setattr("repro.harness.sweep.prepare_workload", boom)
        warm = run_micro_sweep(**sweep_kwargs(), cache=cache)
        assert len(warm.cells) == len(POLICIES)

    def test_cached_equals_uncached(self, tmp_path):
        cache = SweepCache(tmp_path)
        run_micro_sweep(**sweep_kwargs(), cache=cache)
        cached = run_micro_sweep(**sweep_kwargs(), cache=cache)
        plain = run_micro_sweep(**sweep_kwargs())
        assert cached.cells == plain.cells

    def test_parameter_change_misses(self, tmp_path):
        cache = SweepCache(tmp_path)
        run_micro_sweep(**sweep_kwargs(), cache=cache)
        cache.hits = cache.misses = 0
        run_micro_sweep(**sweep_kwargs(txns_per_thread=21), cache=cache)
        assert cache.hits == 0
        assert cache.misses == len(POLICIES)

    def test_writeback_variants_miss_each_others_entries(self, tmp_path):
        cache = SweepCache(tmp_path)
        run_micro_sweep(**sweep_kwargs(policies=("hw+undo+redo+clwb",)), cache=cache)
        assert cache.stores == 1
        cache.hits = cache.misses = 0
        run_micro_sweep(**sweep_kwargs(policies=("hw+undo+redo+fwb",)), cache=cache)
        assert (cache.hits, cache.misses) == (0, 1)

    def test_canonical_name_hits_anonymous_entry(self, tmp_path):
        # "fwb" and "hw+undo+redo+fwb" are the same mechanisms; warming
        # the cache under either spelling serves the other.
        cache = SweepCache(tmp_path)
        run_micro_sweep(**sweep_kwargs(policies=("hw+undo+redo+fwb",)), cache=cache)
        cache.hits = cache.misses = 0
        run_micro_sweep(**sweep_kwargs(policies=(Policy.FWB,)), cache=cache)
        assert (cache.hits, cache.misses) == (1, 0)


class TestSweepResultMerge:
    def test_merge_combines_and_other_wins(self):
        first = run_micro_sweep(**sweep_kwargs(policies=(Policy.NON_PERS,)))
        second = run_micro_sweep(**sweep_kwargs(policies=(Policy.FWB,)))
        merged = first.merge(second)
        assert len(merged.cells) == 2
        assert merged.policies() == [Policy.NON_PERS, Policy.FWB]
        # Overlap: other's cells replace self's.
        cell = next(iter(second.cells))
        fake = dataclasses.replace(second.cells[cell], instructions=1)
        override = SweepResult({cell: fake})
        assert merged.merge(override).cells[cell].instructions == 1
        # Inputs are not mutated.
        assert len(first.cells) == 1 and len(second.cells) == 1


class TestCachePrune:
    def fill(self, tmp_path):
        cache = SweepCache(directory=tmp_path)
        cache.put("k-current", MachineStats())
        stale = SweepCache(directory=tmp_path, salt="sweep-v1")
        stale.put("k-old", MachineStats())
        (tmp_path / "garbage.json").write_text("{not json")
        (tmp_path / "unrelated.txt").write_text("ignore me")
        return cache

    def test_prune_removes_only_foreign_salt_entries(self, tmp_path):
        cache = self.fill(tmp_path)
        summary = cache.prune()
        assert summary == {"scanned": 3, "stale": 2, "removed": 2, "kept": 1}
        remaining = sorted(p.name for p in tmp_path.iterdir())
        assert len([n for n in remaining if n.endswith(".json")]) == 1
        assert "unrelated.txt" in remaining

    def test_dry_run_counts_without_deleting(self, tmp_path):
        cache = self.fill(tmp_path)
        summary = cache.prune(dry_run=True)
        assert summary["stale"] == 2
        assert summary["removed"] == 0
        assert len(list(tmp_path.glob("*.json"))) == 3

    def test_prune_on_missing_directory_is_a_noop(self, tmp_path):
        cache = SweepCache(directory=tmp_path / "never-created")
        assert cache.prune() == {
            "scanned": 0, "stale": 0, "removed": 0, "kept": 0,
        }

    def test_pruned_current_entry_still_hits(self, tmp_path):
        cache = self.fill(tmp_path)
        cache.prune()
        assert cache.get("k-current") is not None
