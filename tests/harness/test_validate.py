"""Tests for the one-shot reproduction validation."""

import pytest

from repro import Policy
from repro.harness.sweep import run_micro_sweep
from repro.harness.validate import Check, ValidationReport, validate
from repro.workloads.hashtable import HashTableWorkload
from tests.conftest import tiny_system


class TestReport:
    def test_empty_report_passes(self):
        assert ValidationReport().passed

    def test_single_failure_fails_all(self):
        report = ValidationReport()
        report.add("a", "claim", "x", True)
        report.add("b", "claim", "y", False)
        assert not report.passed
        assert "FAIL" in report.rendered
        assert "SOME CHECKS FAILED" in report.rendered

    def test_rendered_contains_rows(self):
        report = ValidationReport()
        report.add("fig6", "claim text", 1.5, True)
        text = report.rendered
        assert "fig6" in text and "claim text" in text and "1.5" in text
        assert "ALL CHECKS PASSED" in text

    def test_check_dataclass(self):
        check = Check("n", "c", "m", True)
        assert check.passed


class TestValidate:
    @pytest.fixture(scope="class")
    def sweep(self):
        return run_micro_sweep(
            benchmarks=("hash",),
            threads=(1,),
            txns_per_thread=120,
            system=tiny_system(num_cores=2),
            workload_factory=lambda name: HashTableWorkload(
                seed=1, buckets_per_partition=32, keys_per_partition=256
            ),
        )

    def test_passes_on_real_sweep(self, sweep):
        report = validate(sweep=sweep)
        assert report.passed, report.rendered

    def test_covers_all_headline_figures(self, sweep):
        report = validate(sweep=sweep)
        names = {check.name.split("/")[0] for check in report.checks}
        assert names == {"fig6", "fig7", "fig8", "fig9", "fig11b"}

    def test_detects_a_broken_sweep(self, sweep):
        """Corrupting the fwb cell must flip the verdict."""
        from repro.harness.sweep import SweepCell

        broken = type(sweep)(cells=dict(sweep.cells))
        fwb_cell = SweepCell("hash", 1, Policy.FWB)
        unsafe_cell = SweepCell("hash", 1, Policy.UNDO_CLWB)
        # Make fwb look slower than software-clwb.
        broken.cells[fwb_cell] = broken.cells[unsafe_cell]
        report = validate(sweep=broken)
        assert not report.passed
