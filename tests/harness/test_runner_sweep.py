"""Tests for the experiment runner and sweep (small configurations)."""

import pytest

from repro import Policy
from repro.errors import WorkloadError
from repro.harness.runner import (
    RunConfig,
    default_experiment_config,
    prepare_workload,
    run_workload,
)
from repro.harness.sweep import run_micro_sweep
from repro.workloads.hashtable import HashTableWorkload
from tests.conftest import tiny_system


def small_workload(seed=1):
    return HashTableWorkload(
        seed=seed, buckets_per_partition=16, keys_per_partition=64
    )


class TestRunner:
    def test_run_produces_stats(self):
        outcome = run_workload(
            small_workload(),
            RunConfig(policy=Policy.FWB, threads=1, txns_per_thread=20, system=tiny_system()),
        )
        assert outcome.stats.transactions_committed == 20
        assert outcome.throughput > 0
        assert outcome.ipc > 0

    def test_multithreaded_commits_all(self):
        outcome = run_workload(
            small_workload(),
            RunConfig(policy=Policy.FWB, threads=2, txns_per_thread=15, system=tiny_system()),
        )
        assert outcome.stats.transactions_committed == 30

    def test_too_many_threads_rejected(self):
        with pytest.raises(WorkloadError):
            run_workload(
                small_workload(),
                RunConfig(policy=Policy.FWB, threads=3, system=tiny_system()),
            )

    def test_deterministic(self):
        def run():
            return run_workload(
                small_workload(),
                RunConfig(policy=Policy.FWB, threads=2, txns_per_thread=15, system=tiny_system()),
            ).stats

        first, second = run(), run()
        assert first.cycles == second.cycles
        assert first.instructions == second.instructions
        assert first.nvram_write_bytes == second.nvram_write_bytes


class TestPrepared:
    def test_prepared_runs_match_fresh_runs(self):
        workload = small_workload()
        prepared = prepare_workload(workload, tiny_system())
        run = RunConfig(policy=Policy.FWB, threads=1, txns_per_thread=20, system=tiny_system())
        first = run_workload(workload, run, prepared=prepared).stats
        second = run_workload(workload, run, prepared=prepared).stats
        assert first.cycles == second.cycles

    def test_prepared_wrong_workload_rejected(self):
        prepared = prepare_workload(small_workload(), tiny_system())
        with pytest.raises(WorkloadError):
            run_workload(
                small_workload(seed=9),
                RunConfig(policy=Policy.FWB, system=tiny_system()),
                prepared=prepared,
            )

    def test_default_config_is_valid(self):
        default_experiment_config().validate()


class TestSweep:
    def test_sweep_covers_matrix(self):
        sweep = run_micro_sweep(
            benchmarks=("hash",),
            threads=(1, 2),
            policies=(Policy.NON_PERS, Policy.FWB),
            txns_per_thread=10,
            system=tiny_system(),
            workload_factory=lambda name: small_workload(),
        )
        assert len(sweep.cells) == 4
        assert sweep.benchmarks() == ["hash"]
        assert sweep.thread_counts() == [1, 2]
        assert sweep.policies() == [Policy.NON_PERS, Policy.FWB]
        stats = sweep.stats("hash", 1, Policy.FWB)
        assert stats.transactions_committed == 10
