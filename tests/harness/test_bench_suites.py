"""Bench suite registry and runner: determinism, perturb hook, validation."""

import pytest

from repro.bench import (
    BenchError,
    BenchTimer,
    Suite,
    get_suites,
    register,
    run_bench,
)
from repro.bench.runner import ENV_PERTURB

EXPECTED_SUITES = [
    "sweep-serial",
    "sweep-parallel",
    "cache-probe",
    "logbuffer-drain",
    "recovery-replay",
    "sweep-cache-hit",
    "compile-decode",
    "compile-replay",
    "pstatic-matrix",
    "ablate-grid",
    "serve-shard",
    "serve-traffic",
    "adapt-decide",
    "adapt-switch",
]

# Cheap enough to run twice in a unit test; the expensive sweep suites
# are exercised end-to-end by the CLI integration tests instead.
CHEAP_SUITES = ["cache-probe", "logbuffer-drain", "recovery-replay"]


class TestRegistry:
    def test_all_expected_suites_registered(self):
        assert [s.name for s in get_suites()] == EXPECTED_SUITES

    def test_subset_selection_preserves_request_order(self):
        picked = get_suites(["logbuffer-drain", "cache-probe"])
        assert [s.name for s in picked] == ["logbuffer-drain", "cache-probe"]

    def test_unknown_suite_raises_bencherror(self):
        with pytest.raises(BenchError, match="unknown bench suite"):
            get_suites(["no-such-suite"])

    def test_duplicate_registration_rejected(self):
        get_suites()  # ensure the built-in suites are registered
        with pytest.raises(ValueError, match="already registered"):
            register("cache-probe", "dup")(lambda quick, timer: {})

    def test_suite_run_rejects_non_numeric_counters(self):
        bad = Suite("bad", "d", lambda quick, timer: {"verdict": "fast"})
        with pytest.raises(BenchError, match="not a number"):
            bad.run(True, BenchTimer())

    def test_suite_run_rejects_bool_counters(self):
        bad = Suite("bad", "d", lambda quick, timer: {"ok": True})
        with pytest.raises(BenchError, match="not a number"):
            bad.run(True, BenchTimer())


class TestDeterminism:
    @pytest.mark.parametrize("name", CHEAP_SUITES)
    def test_counters_identical_across_repeats(self, name):
        result = run_bench(names=[name], quick=True, repeats=2)
        [suite] = result.suites
        assert not suite.counter_drift
        assert result.deterministic
        assert suite.counters, "suite must report at least one counter"

    def test_two_runs_agree_exactly(self):
        first = run_bench(names=["logbuffer-drain"], quick=True, repeats=1)
        second = run_bench(names=["logbuffer-drain"], quick=True, repeats=1)
        assert first.suites[0].counters == second.suites[0].counters


class TestPerturbHook:
    def test_perturb_scales_counters_and_wall(self, monkeypatch):
        clean = run_bench(names=["logbuffer-drain"], quick=True, repeats=1)
        monkeypatch.setenv(ENV_PERTURB, "logbuffer-drain=2.0")
        warped = run_bench(names=["logbuffer-drain"], quick=True, repeats=1)
        for key, value in clean.suites[0].counters.items():
            expected = int(value * 2.0) if isinstance(value, int) else value * 2.0
            assert warped.suites[0].counters[key] == expected

    def test_perturb_only_touches_named_suite(self, monkeypatch):
        clean = run_bench(names=["cache-probe"], quick=True, repeats=1)
        monkeypatch.setenv(ENV_PERTURB, "logbuffer-drain=2.0")
        other = run_bench(names=["cache-probe"], quick=True, repeats=1)
        assert other.suites[0].counters == clean.suites[0].counters


class TestTimer:
    def test_timed_sections_accumulate(self):
        timer = BenchTimer()
        assert not timer.used
        with timer.timed():
            pass
        with timer.timed():
            pass
        assert timer.used
        assert timer.elapsed >= 0.0
