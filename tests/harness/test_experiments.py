"""Tests for the per-figure experiment definitions (small sizes)."""

import pytest

from repro import Policy, SystemConfig
from repro.harness.experiments import (
    figure6_throughput,
    figure7_ipc_instructions,
    figure8_energy,
    figure9_write_traffic,
    figure10_whisper,
    figure11a_log_buffer,
    figure11b_fwb_frequency,
    summarize_fwb_gain,
    table1_hardware_overhead,
    table2_configuration,
    table3_microbenchmarks,
)
from repro.harness.sweep import run_micro_sweep
from repro.workloads.hashtable import HashTableWorkload
from tests.conftest import tiny_system


@pytest.fixture(scope="module")
def sweep():
    return run_micro_sweep(
        benchmarks=("hash",),
        threads=(1,),
        txns_per_thread=60,
        system=tiny_system(num_cores=2),
        workload_factory=lambda name: HashTableWorkload(
            seed=1, buckets_per_partition=16, keys_per_partition=64
        ),
    )


class TestFigureExtracts:
    def test_figure6_normalized_to_unsafe(self, sweep):
        result = figure6_throughput(sweep)
        cell = result.data[("hash", 1)]
        assert cell[Policy.UNSAFE_BASE] == pytest.approx(1.0)
        assert "unsafe-base" in result.rendered

    def test_figure7_has_both_metrics(self, sweep):
        result = figure7_ipc_instructions(sweep)
        assert set(result.data) == {"ipc", "instructions"}
        instr = result.data["instructions"][("hash", 1)]
        assert instr[Policy.FWB] < instr[Policy.UNDO_CLWB]

    def test_figure8_energy_ratios(self, sweep):
        result = figure8_energy(sweep)
        cell = result.data[("hash", 1)]
        assert cell[Policy.UNSAFE_BASE] == pytest.approx(1.0)
        assert cell[Policy.FWB] >= cell[Policy.UNDO_CLWB]

    def test_figure9_traffic_ratios(self, sweep):
        result = figure9_write_traffic(sweep)
        cell = result.data[("hash", 1)]
        assert cell[Policy.FWB] >= cell[Policy.REDO_CLWB]

    def test_summarize_gain_positive(self, sweep):
        assert summarize_fwb_gain(sweep, 1) > 1.0


class TestFigure10:
    def test_runs_one_kernel(self):
        result = figure10_whisper(
            kernels=("ycsb",),
            policies=(Policy.UNSAFE_BASE, Policy.FWB),
            txns_per_thread=20,
            system=tiny_system(num_cores=2),
        )
        cell = result.data[("ycsb", Policy.FWB)]
        assert set(cell) == {"ipc", "memory_energy", "throughput", "nvram_writes"}
        assert result.data[("ycsb", Policy.UNSAFE_BASE)]["ipc"] == pytest.approx(1.0)


class TestFigure11:
    def test_log_buffer_sweep_shape(self):
        result = figure11a_log_buffer(
            sizes=(0, 8),
            txns_per_thread=40,
            system=tiny_system(num_cores=2),
            workload_factory=lambda: HashTableWorkload(
                seed=1, buckets_per_partition=16, keys_per_partition=64
            ),
        )
        assert result.data[0] == pytest.approx(1.0)
        assert result.data[8] >= 0.95  # buffering never drastically hurts

    def test_fwb_frequency_inverse_in_log_size(self):
        result = figure11b_fwb_frequency(log_sizes=(64, 128, 65536))
        assert result.data[64] > result.data[128] > result.data[65536]
        assert result.data[64] == pytest.approx(result.data[128] * 2)

    def test_paper_running_example_interval(self):
        result = figure11b_fwb_frequency(log_sizes=(65536,))
        interval = 1.0 / result.data[65536]
        assert 2e6 < interval < 4e6  # ~3M cycles for the 4 MB log


class TestTables:
    def test_table1_matches_paper_sizes(self):
        result = table1_hardware_overhead(SystemConfig())
        assert result.data["Transaction ID register"] == 1
        assert result.data["Log head pointer register"] == 8
        assert result.data["Log tail pointer register"] == 8
        # 15 entries x 64 B = 960 B (the paper reports 964 B).
        assert result.data["Log buffer (optional)"] == 960

    def test_table2_renders_table_ii(self):
        text = table2_configuration().rendered
        assert "2.5 GHz" in text
        assert "8 banks" in text

    def test_table3_lists_five_microbenchmarks(self):
        result = table3_microbenchmarks()
        names = [row[0] for row in result.rows]
        assert names == ["hash", "rbtree", "sps", "btree", "ssca2"]
        footprints = {row[0]: row[1] for row in result.rows}
        assert footprints["sps"] == "1 GB"
        assert footprints["ssca2"] == "16 MB"
