"""Trace-cache behaviour of the sweep engine.

The sweep compiles each trace-compilable (benchmark, threads) pair once
and replays it per design cell; the compiled trace is memoised
in-process and persisted to disk, so a warm sweep skips workload
preparation entirely.  ``REPRO_TRACE=0`` switches the engine off and
must reproduce identical results through the interpreter.
"""

import dataclasses

import pytest

from repro.harness.cache import TraceCache, shared_trace_cache, trace_enabled
from repro.harness.sweep import run_micro_sweep

MATRIX = dict(benchmarks=("hash",), threads=(1, 2), txns_per_thread=10)


def _snapshot(result):
    return {
        (cell.benchmark, cell.threads, cell.policy.value): dataclasses.asdict(stats)
        for cell, stats in result.cells.items()
    }


def test_traced_sweep_matches_interpreted(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    monkeypatch.setenv("REPRO_TRACE", "0")
    interpreted = _snapshot(run_micro_sweep(**MATRIX))
    monkeypatch.setenv("REPRO_TRACE", "1")
    traced = _snapshot(run_micro_sweep(**MATRIX))
    assert interpreted == traced


def test_warm_sweep_hits_trace_cache(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    monkeypatch.delenv("REPRO_TRACE", raising=False)
    assert trace_enabled()
    cache = shared_trace_cache()
    cold_misses = cache.misses
    # seed=9 keeps this matrix distinct from other tests sharing the
    # process-wide memo, so the first sweep really is cold.
    first = _snapshot(run_micro_sweep(**MATRIX, seed=9))
    assert cache.misses > cold_misses  # compiled at least once
    warm_hits = cache.hits
    second = _snapshot(run_micro_sweep(**MATRIX, seed=9))
    assert cache.hits > warm_hits  # second sweep replayed from cache
    assert first == second


def test_trace_cache_disk_roundtrip_and_corruption(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    from repro.harness.runner import prepare_workload
    from repro.sim.replay import compile_trace
    from repro.workloads.hashtable import HashTableWorkload
    from tests.conftest import tiny_system

    prepared = prepare_workload(
        HashTableWorkload(seed=3, buckets_per_partition=8, keys_per_partition=32),
        tiny_system(),
    )
    trace = compile_trace(prepared, 1, 4)
    cache = TraceCache(tmp_path)
    key = cache.key(prepared.system, prepared.workload, 1, 4)
    assert cache.get(key) is None
    cache.put(key, trace)
    # A fresh cache (empty memo) must decode from disk.
    fresh = TraceCache(tmp_path)
    loaded = fresh.get(key)
    assert loaded is not None and loaded.op_count() == trace.op_count()
    # Corrupt file: counted, dropped, treated as a miss.
    path = fresh._path(key)
    path.write_bytes(b"garbage")
    broken = TraceCache(tmp_path)
    assert broken.get(key) is None
    assert broken.corrupt == 1


def test_blob_checksum_catches_bit_flips_and_truncation(tmp_path):
    """The CRC32 trailer on `CTRC0001` blobs: a single flipped byte or a
    truncated file must fail decode loudly (ValueError) instead of
    yielding a silently-wrong trace or a deep zlib crash."""
    from repro.harness.runner import prepare_workload
    from repro.sim.ctrace import CompiledTrace
    from repro.sim.replay import compile_trace
    from repro.workloads.hashtable import HashTableWorkload
    from tests.conftest import tiny_system

    prepared = prepare_workload(
        HashTableWorkload(seed=4, buckets_per_partition=8, keys_per_partition=32),
        tiny_system(),
    )
    trace = compile_trace(prepared, 1, 4)
    blob = trace.to_bytes()
    # Round trip is intact.
    assert CompiledTrace.from_bytes(blob).op_count() == trace.op_count()
    # Flip one byte mid-blob: checksum mismatch.
    flipped = bytearray(blob)
    flipped[len(flipped) // 2] ^= 0x40
    with pytest.raises(ValueError, match="checksum mismatch"):
        CompiledTrace.from_bytes(bytes(flipped))
    # Drop the tail: truncation is caught before any parsing.
    with pytest.raises(ValueError):
        CompiledTrace.from_bytes(blob[: len(blob) // 2])
    with pytest.raises(ValueError, match="truncated"):
        CompiledTrace.from_bytes(blob[:10])


def test_corrupt_disk_entry_warns_and_recompiles(tmp_path, monkeypatch, capsys):
    """A bit-flipped on-disk entry is a counted miss with a stderr
    warning — the sweep recompiles instead of crashing or replaying a
    wrong trace."""
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    from repro.harness.runner import prepare_workload
    from repro.sim.replay import compile_trace
    from repro.workloads.hashtable import HashTableWorkload
    from tests.conftest import tiny_system

    prepared = prepare_workload(
        HashTableWorkload(seed=5, buckets_per_partition=8, keys_per_partition=32),
        tiny_system(),
    )
    trace = compile_trace(prepared, 1, 4)
    cache = TraceCache(tmp_path)
    key = cache.key(prepared.system, prepared.workload, 1, 4)
    cache.put(key, trace)
    path = cache._path(key)
    raw = bytearray(path.read_bytes())
    raw[len(raw) // 2] ^= 0x01
    path.write_bytes(bytes(raw))
    broken = TraceCache(tmp_path)  # fresh memo: must hit the disk
    assert broken.get(key) is None
    assert broken.corrupt == 1 and broken.misses == 1
    err = capsys.readouterr().err
    assert "corrupt trace-cache entry" in err and "recompiling" in err
    assert "corrupt entr(ies) recompiled" in broken.summary()
    # Recompile-and-put heals the entry for the next reader.
    broken.put(key, trace)
    healed = TraceCache(tmp_path)
    assert healed.get(key) is not None


def test_trace_key_ignores_design(tmp_path):
    from repro.harness.runner import prepare_workload
    from repro.workloads.hashtable import HashTableWorkload
    from tests.conftest import tiny_system

    workload = HashTableWorkload(seed=3)
    system = tiny_system()
    cache = TraceCache(tmp_path)
    assert cache.key(system, workload, 2, 10) == cache.key(system, workload, 2, 10)
    assert cache.key(system, workload, 2, 10) != cache.key(system, workload, 4, 10)
    assert cache.key(system, workload, 2, 10) != cache.key(system, workload, 2, 20)
