"""ShardMachine semantics: horizons, run-state isolation, serve queue."""

import dataclasses

import pytest

from repro.core.design import DESIGNS
from repro.errors import WorkloadError
from repro.harness.runner import (
    RunConfig,
    prepare_workload,
    run_workload_monolithic,
)
from repro.sched.shard import ShardMachine
from repro.sim.machine import Machine
from repro.txn.runtime import PersistentMemory
from repro.workloads.whisper import make_whisper_kernel
from tests.conftest import tiny_system

FWB = DESIGNS.resolve("fwb")
TXNS = 8


@pytest.fixture(scope="module")
def prepared_redis():
    # redis has real volatile run state (the AOF append cursor), so
    # shard-interleaving bugs that leak state show up in its stats.
    kernel = make_whisper_kernel("redis", seed=2, keys_per_partition=64)
    return prepare_workload(kernel, tiny_system())


def _shard_for(prepared, threads=2):
    machine = Machine(prepared.system, FWB)
    pm = PersistentMemory(machine)
    prepared.restore_into(machine)
    pm.heap.restore(prepared.heap_state)
    workload = prepared.workload
    workload.attach(pm)
    workload.reset_run_state()
    return ShardMachine(machine, pm, workload, threads=threads)


def _reference_stats(prepared, threads=2):
    run = RunConfig(
        policy=FWB, threads=threads, txns_per_thread=TXNS,
        system=prepared.system,
    )
    outcome = run_workload_monolithic(prepared.workload, run, prepared=prepared)
    stats = dataclasses.asdict(outcome.stats)
    outcome.machine.nvram.recycle()
    return stats


def test_horizon_stepping_reaches_the_same_end_state(prepared_redis):
    """Chopping execution into small until_cycle windows must not change
    a single counter relative to one uninterrupted drain."""
    reference = _reference_stats(prepared_redis)
    shard = _shard_for(prepared_redis)
    shard.start_batch(TXNS)
    horizon = 0.0
    while not shard.done:
        horizon += 150.0
        shard.step(horizon)
    stats = dataclasses.asdict(shard.machine.finalize())
    assert stats == reference
    shard.machine.nvram.recycle()


def test_interleaved_shards_cannot_leak_run_state(prepared_redis):
    """Two shards sharing one workload instance, stepped alternately in
    small windows, must each end bit-identical to a solo run — the
    per-shard run-state checkpoint swap is what isolates them."""
    reference = _reference_stats(prepared_redis)
    shard_a = _shard_for(prepared_redis)
    shard_b = _shard_for(prepared_redis)
    shard_a.start_batch(TXNS)
    shard_b.start_batch(TXNS)
    horizon = 0.0
    while not (shard_a.done and shard_b.done):
        horizon += 97.0
        shard_a.step(horizon)
        shard_b.step(horizon)
    stats_a = dataclasses.asdict(shard_a.machine.finalize())
    stats_b = dataclasses.asdict(shard_b.machine.finalize())
    assert stats_a == reference
    assert stats_b == reference
    shard_a.machine.nvram.recycle()
    shard_b.machine.nvram.recycle()


def test_step_counts_generator_advances(prepared_redis):
    shard = _shard_for(prepared_redis)
    shard.start_batch(2)
    total = shard.step(None)
    assert total > 0 and shard.done
    assert shard.step(None) == 0  # idempotent once drained
    shard.machine.nvram.recycle()


def test_too_many_threads_rejected(prepared_redis):
    with pytest.raises(WorkloadError):
        _shard_for(prepared_redis, threads=3)  # tiny system has 2 cores


def test_step_before_start_rejected(prepared_redis):
    shard = _shard_for(prepared_redis)
    with pytest.raises(WorkloadError):
        shard.step(None)
    shard.machine.nvram.recycle()


def test_inject_requires_serve_mode(prepared_redis):
    shard = _shard_for(prepared_redis)
    shard.start_batch(1)
    with pytest.raises(WorkloadError):
        shard.inject(object())
    shard.machine.nvram.recycle()


def test_double_start_rejected(prepared_redis):
    shard = _shard_for(prepared_redis)
    shard.start_batch(1)
    with pytest.raises(WorkloadError):
        shard.start_serve()
    shard.machine.nvram.recycle()
