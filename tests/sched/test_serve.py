"""End-to-end serve scenarios: determinism, replication, psan, CLI."""

import json

import pytest

from repro.errors import ConfigError
from repro.sanitizer.checker import PersistOrderChecker
from repro.sched.serve import ServeConfig, run_serve
from repro.sched.traffic import TrafficConfig


def _config(**overrides):
    base = dict(
        workload="memcached",
        shards=2,
        threads=2,
        traffic=TrafficConfig(requests=40, rate=0.004, seed=6),
    )
    base.update(overrides)
    return ServeConfig(**base)


class TestDeterminism:
    def test_identical_configs_yield_identical_reports(self):
        first = run_serve(_config())
        second = run_serve(_config())
        assert first.digest() == second.digest()
        assert first.to_dict() == second.to_dict()

    def test_all_request_shaped_kernels_complete(self):
        for workload in ("memcached", "redis", "ycsb"):
            report = run_serve(
                _config(
                    workload=workload,
                    shards=1,
                    traffic=TrafficConfig(requests=24, rate=0.004, seed=6),
                )
            )
            assert report.completed == report.admitted == 24
            assert report.p50 > 0 and report.p999 >= report.p99 >= report.p50

    def test_seed_changes_the_report(self):
        first = run_serve(_config())
        second = run_serve(
            _config(traffic=TrafficConfig(requests=40, rate=0.004, seed=7))
        )
        assert first.digest() != second.digest()


class TestLatencyAttribution:
    def test_latency_covers_queueing_not_just_service(self):
        """Under a hard burst, later requests in the queue must report
        larger enqueue->durable latency than the first ones — the
        client-visible number includes queueing delay."""
        report = run_serve(
            ServeConfig(
                workload="ycsb",
                shards=1,
                threads=1,
                batch_requests=1,
                traffic=TrafficConfig(
                    requests=16, rate=0.05, arrival="burst", burst_size=16, seed=2
                ),
            )
        )
        assert report.completed == 16
        assert report.p999 > 2 * report.p50


class TestReplication:
    def test_rings_compact_mid_run_and_stay_bounded(self):
        report = run_serve(
            ServeConfig(
                workload="redis",
                shards=1,
                threads=2,
                replicas=2,
                ring_records=64,
                traffic=TrafficConfig(requests=60, rate=0.004, seed=3),
            )
        )
        rep = report.replication
        assert rep["replicas"] == 2
        assert rep["compactions"] > 0
        assert rep["records_compacted"] > 0
        for shard in rep["per_shard"]:
            # Post-run occupancy must be below the ring size: compaction
            # kept the standby bounded while records kept arriving.
            assert all(occ <= 64 for occ in shard["ring_occupancy"])
            assert all(base > 0 for base in shard["base_seqs"])
            assert shard["committed_frontier"] > 0

    def test_replication_is_deterministic(self):
        def go():
            return run_serve(
                ServeConfig(
                    workload="redis",
                    shards=1,
                    replicas=1,
                    ring_records=64,
                    traffic=TrafficConfig(requests=40, rate=0.004, seed=3),
                )
            )

        assert go().digest() == go().digest()


class TestGuards:
    def test_non_request_shaped_kernel_rejected(self):
        with pytest.raises(ConfigError, match="request-shaped"):
            run_serve(_config(workload="ctree"))

    def test_bad_shards_rejected(self):
        with pytest.raises(ConfigError):
            run_serve(_config(shards=0))


class TestPsanOnServeStreams:
    def test_scheduler_produced_streams_are_clean(self):
        """Attach the persistency-ordering sanitizer to every shard
        machine: the serve path's interleaved, request-batched
        transactions must satisfy the same ordering rules as the batch
        path under a guaranteed design."""
        checkers = {}

        def hook(shard_id, machine):
            checkers[shard_id] = PersistOrderChecker.attach(machine)

        report = run_serve(
            _config(traffic=TrafficConfig(requests=30, rate=0.004, seed=6)),
            machine_hook=hook,
        )
        assert report.completed == 30
        assert len(checkers) == 2
        for shard_id, checker in checkers.items():
            psan_report = checker.finish()
            assert psan_report.clean, (shard_id, psan_report.render())


class TestCli:
    def test_serve_command_writes_reports(self, tmp_path, capsys):
        from repro.__main__ import main

        md = tmp_path / "serve.md"
        out = tmp_path / "serve.json"
        code = main(
            [
                "serve", "--workload", "memcached", "--shards", "1",
                "--requests", "16", "--markdown", str(md), "--json", str(out),
            ]
        )
        assert code == 0
        text = capsys.readouterr().out
        assert "p99" in text and "throughput" in text
        assert "p99 latency" in md.read_text()
        payload = json.loads(out.read_text())
        assert payload["offered"] == 16
        assert payload["completed"] == payload["admitted"]
