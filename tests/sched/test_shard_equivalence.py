"""Differential gate: the steppable-shard runner is the old runner.

``run_workload`` is now a thin adapter driving a single
:class:`~repro.sched.shard.ShardMachine` through the event-loop
scheduler; ``run_workload_monolithic`` is the pre-refactor loop, kept
verbatim as the reference.  These tests demand **bit-identical** cost
counters between the two across the full microbenchmark x canonical
design matrix at 1, 2 and 4 threads — any drift means the shard's step
loop no longer replicates the historical heap order.

(The golden-fixture suite in ``test_design_equivalence.py`` separately
pins ``run_workload`` — i.e. the scheduler path — to digests captured
before this refactor existed.)
"""

import dataclasses

import pytest

from repro.core.design import CANONICAL_DESIGNS
from repro.harness.runner import (
    RunConfig,
    prepare_workload,
    run_workload,
    run_workload_monolithic,
)
from repro.sim.config import NVDimmConfig
from repro.workloads import MICROBENCHMARKS, make_microbenchmark
from tests.conftest import tiny_system

TXNS = 10


@pytest.fixture(scope="module")
def system():
    # 4 cores for the 4-thread column; NVRAM large enough for every
    # microbenchmark's default footprint (ssca2 outgrows the 4 MB tiny
    # device).
    return tiny_system(
        num_cores=4, nvram=NVDimmConfig(size_bytes=16 * 1024 * 1024)
    )


@pytest.fixture(scope="module", params=sorted(MICROBENCHMARKS), ids=str)
def prepared(request, system):
    return prepare_workload(make_microbenchmark(request.param), system)


@pytest.mark.parametrize("threads", [1, 2, 4])
@pytest.mark.parametrize("design", CANONICAL_DESIGNS, ids=lambda d: d.name)
def test_scheduler_matches_monolithic_bit_for_bit(prepared, design, threads):
    run = RunConfig(
        policy=design, threads=threads, txns_per_thread=TXNS,
        system=prepared.system,
    )
    fresh = prepared.workload
    sched_outcome = run_workload(fresh, run, prepared=prepared)
    mono_outcome = run_workload_monolithic(fresh, run, prepared=prepared)
    try:
        assert dataclasses.asdict(sched_outcome.stats) == dataclasses.asdict(
            mono_outcome.stats
        )
        assert bytes(sched_outcome.machine.nvram.image) == bytes(
            mono_outcome.machine.nvram.image
        )
    finally:
        sched_outcome.machine.nvram.recycle()
        mono_outcome.machine.nvram.recycle()
