"""Event-loop scheduler: admission, checkpoints, config validation."""

import pytest

from repro.errors import ConfigError
from repro.sched.loop import AdmissionConfig, EventLoopScheduler
from repro.sched.serve import ServeConfig, run_serve
from repro.sched.traffic import TrafficConfig


def test_scheduler_needs_shards():
    with pytest.raises(ConfigError):
        EventLoopScheduler([])


@pytest.mark.parametrize(
    "bad",
    [dict(max_queue_depth=0), dict(log_buffer_limit=0)],
    ids=lambda kw: next(iter(kw)),
)
def test_admission_validation(bad):
    with pytest.raises(ConfigError):
        AdmissionConfig(**bad).validate()


def test_queue_depth_admission_rejects_under_burst():
    """A burst far larger than the queue bound must shed load, and
    offered == admitted + rejected must hold exactly."""
    report = run_serve(
        ServeConfig(
            workload="ycsb",
            shards=1,
            threads=1,
            batch_requests=2,
            admission=AdmissionConfig(max_queue_depth=4),
            traffic=TrafficConfig(
                requests=48, rate=0.05, arrival="burst", burst_size=48, seed=3
            ),
        )
    )
    assert report.rejected > 0
    assert report.admitted + report.rejected == report.offered == 48
    assert report.completed == report.admitted


def test_relaxed_admission_admits_everything():
    report = run_serve(
        ServeConfig(
            workload="ycsb",
            shards=1,
            threads=1,
            admission=AdmissionConfig(max_queue_depth=10_000),
            traffic=TrafficConfig(
                requests=48, rate=0.05, arrival="burst", burst_size=48, seed=3
            ),
        )
    )
    assert report.rejected == 0
    assert report.completed == report.offered == 48


def test_checkpoint_sees_nondecreasing_horizons_then_final_none():
    horizons = []
    config = ServeConfig(
        workload="memcached",
        shards=2,
        traffic=TrafficConfig(requests=24, rate=0.005, seed=4),
    )
    # run_serve wires its own checkpoint only for replication; drive the
    # scheduler's contract directly through a probe ServeConfig run by
    # monkeypatching is heavier than just using the scheduler: reuse the
    # serve entry but with a replicator-free scheduler via the public
    # pieces.
    from repro.sched.loop import EventLoopScheduler as Scheduler

    calls = []

    class _Probe:
        shard_id = 0

        def step(self, until_cycle):
            return 0

        def queue_depth(self):
            return 0

        def log_occupancy(self):
            return 0

        def inject(self, request):
            calls.append(request.seq)

        def drain(self):
            pass

    from repro.sched.traffic import open_loop_schedule

    schedule = open_loop_schedule(config.traffic, 1)
    scheduler = Scheduler([_Probe()], checkpoint=horizons.append)
    scheduler.run_open_loop(schedule)
    assert horizons[-1] is None
    seen = [h for h in horizons if h is not None]
    assert seen == sorted(seen) and len(seen) == len(schedule)
    assert calls == [request.seq for request in schedule]
    assert len(scheduler.admitted) == len(schedule)
