"""Open-loop traffic generator: determinism, arrival shapes, routing."""

import pytest

from repro.errors import ConfigError
from repro.sched.traffic import Request, TrafficConfig, open_loop_schedule


def test_schedule_is_deterministic():
    config = TrafficConfig(requests=200, rate=0.01, seed=9)
    assert open_loop_schedule(config, 4) == open_loop_schedule(config, 4)


def test_different_seeds_differ():
    a = open_loop_schedule(TrafficConfig(requests=50, seed=1), 2)
    b = open_loop_schedule(TrafficConfig(requests=50, seed=2), 2)
    assert a != b


def test_arrivals_are_nondecreasing_and_seqs_contiguous():
    schedule = open_loop_schedule(TrafficConfig(requests=300, rate=0.05), 3)
    assert [r.seq for r in schedule] == list(range(300))
    for before, after in zip(schedule, schedule[1:]):
        assert after.arrival >= before.arrival


def test_uniform_gaps_are_exact():
    schedule = open_loop_schedule(
        TrafficConfig(requests=10, rate=0.01, arrival="uniform"), 1
    )
    gaps = {
        round(after.arrival - before.arrival, 9)
        for before, after in zip(schedule, schedule[1:])
    }
    assert gaps == {100.0}


def test_burst_groups_share_one_instant():
    config = TrafficConfig(requests=64, rate=0.01, arrival="burst", burst_size=16)
    schedule = open_loop_schedule(config, 2)
    instants = sorted({r.arrival for r in schedule})
    assert len(instants) == 64 // 16
    for instant in instants:
        assert sum(1 for r in schedule if r.arrival == instant) == 16


def test_poisson_mean_gap_tracks_rate():
    config = TrafficConfig(requests=2000, rate=0.01, seed=5)
    schedule = open_loop_schedule(config, 1)
    mean_gap = schedule[-1].arrival / len(schedule)
    assert 80.0 < mean_gap < 125.0  # 1/rate = 100, generous CI


def test_clients_pin_to_shards():
    schedule = open_loop_schedule(TrafficConfig(requests=100, clients=17), 4)
    by_client: dict = {}
    for request in schedule:
        assert request.shard == request.client % 4
        by_client.setdefault(request.client, set()).add(request.shard)
    assert all(len(shards) == 1 for shards in by_client.values())


def test_uniform_draws_in_range():
    for request in open_loop_schedule(TrafficConfig(requests=50), 1):
        assert 0.0 <= request.key_u < 1.0
        assert 0.0 <= request.op_u < 1.0


def test_requests_are_frozen():
    request = open_loop_schedule(TrafficConfig(requests=1), 1)[0]
    with pytest.raises(AttributeError):
        request.arrival = 0.0
    assert isinstance(request, Request)


@pytest.mark.parametrize(
    "bad",
    [
        dict(requests=-1),
        dict(rate=0.0),
        dict(arrival="pareto"),
        dict(burst_size=0),
        dict(clients=0),
    ],
    ids=lambda kw: next(iter(kw)),
)
def test_validation_rejects(bad):
    with pytest.raises(ConfigError):
        open_loop_schedule(TrafficConfig(**bad), 1)


def test_zero_shards_rejected():
    with pytest.raises(ConfigError):
        open_loop_schedule(TrafficConfig(requests=1), 0)
