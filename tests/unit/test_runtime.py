"""Unit tests for repro.txn.runtime (transaction API and lowering)."""

import pytest

from repro import Policy
from repro.errors import TransactionError
from tests.conftest import make_pm, word

GUARANTEED = [Policy.REDO_CLWB, Policy.UNDO_CLWB, Policy.HWL, Policy.FWB]


class TestLifecycle:
    def test_begin_commit(self):
        pm = make_pm(Policy.FWB)
        api = pm.api(0)
        txid = api.tx_begin()
        assert api.in_transaction
        durable = api.tx_commit()
        assert not api.in_transaction
        assert txid >= 1
        assert durable >= 0

    def test_nested_begin_rejected(self):
        api = make_pm(Policy.FWB).api(0)
        api.tx_begin()
        with pytest.raises(TransactionError):
            api.tx_begin()

    def test_commit_without_begin_rejected(self):
        with pytest.raises(TransactionError):
            make_pm(Policy.FWB).api(0).tx_commit()

    def test_write_outside_transaction_rejected(self):
        api = make_pm(Policy.FWB).api(0)
        with pytest.raises(TransactionError):
            api.write(0x2000, word(1))

    def test_context_manager(self):
        api = make_pm(Policy.FWB).api(0)
        with api.transaction():
            api.write(0x2000, word(7))
        assert not api.in_transaction

    def test_context_manager_propagates_errors(self):
        api = make_pm(Policy.FWB).api(0)
        with pytest.raises(RuntimeError):
            with api.transaction():
                raise RuntimeError("boom")

    def test_txids_unique(self):
        pm = make_pm(Policy.FWB)
        api = pm.api(0)
        ids = set()
        for _ in range(10):
            with api.transaction():
                pass
            ids.add(pm._txid_counter)
        assert len(ids) == 10


@pytest.mark.parametrize("policy", list(Policy), ids=lambda p: p.value)
class TestReadYourWrites:
    def test_read_after_write_in_txn(self, policy):
        api = make_pm(policy).api(0)
        api.tx_begin()
        api.write(0x2000, word(123))
        assert api.read(0x2000, 8) == word(123)
        api.tx_commit()

    def test_read_after_commit(self, policy):
        api = make_pm(policy).api(0)
        with api.transaction():
            api.write(0x2000, b"persists")
        assert api.read(0x2000, 8) == b"persists"

    def test_unaligned_multi_word_write(self, policy):
        api = make_pm(policy).api(0)
        payload = bytes(range(20))
        with api.transaction():
            api.write(0x2003, payload)
        assert api.read(0x2003, 20) == payload

    def test_cross_line_read(self, policy):
        api = make_pm(policy).api(0)
        payload = bytes(range(100, 180))
        with api.transaction():
            api.write(0x2020, payload)
        assert api.read(0x2020, 80) == payload


class TestRedoOverlay:
    def test_overlay_patches_partial_read(self):
        api = make_pm(Policy.REDO_CLWB).api(0)
        pm_word = word(0xAABBCCDD)
        api.tx_begin()
        api.write(0x2000, pm_word)
        # Read a wider range overlapping the overlay.
        data = api.read(0x1FF8, 24)
        assert data[8:16] == pm_word
        api.tx_commit()

    def test_in_place_store_deferred_until_commit(self):
        pm = make_pm(Policy.REDO_CLWB)
        api = pm.api(0)
        api.tx_begin()
        api.write(0x2000, word(5))
        # The cache must not have the new value yet (no in-place store).
        assert not pm.machine.hierarchy.is_line_dirty(0x2000)
        api.tx_commit()
        assert api.read(0x2000, 8) == word(5)


class TestGoldenModel:
    def test_commit_recorded(self):
        pm = make_pm(Policy.FWB)
        api = pm.api(0)
        with api.transaction():
            api.write(0x2000, word(1))
        assert len(pm.golden.commits) == 1
        durable, writes = pm.golden.commits[0]
        assert writes[0x2000] == word(1)
        assert durable > 0

    def test_expected_at_orders_by_durability(self):
        pm = make_pm(Policy.FWB)
        pm.golden.record(10.0, {0x2000: word(1)})
        pm.golden.record(20.0, {0x2000: word(2)})
        assert pm.golden.expected_at(15.0)[0x2000] == word(1)
        assert pm.golden.expected_at(25.0)[0x2000] == word(2)
        assert pm.golden.expected_at(5.0) == {}

    def test_touched_addresses(self):
        pm = make_pm(Policy.FWB)
        pm.golden.record(1.0, {0x2000: word(1), 0x2008: word(2)})
        assert pm.golden.touched_addresses() == {0x2000, 0x2008}


@pytest.mark.parametrize("policy", GUARANTEED, ids=lambda p: p.value)
class TestDurability:
    def test_committed_data_recoverable_once_durable(self, policy):
        """Crashing at the reported durability time must preserve the
        transaction: the data is either in NVRAM already (clwb designs)
        or reconstructed from the log (steal-but-no-force designs)."""
        pm = make_pm(policy)
        api = pm.api(0)
        api.tx_begin()
        api.write(0x2000, b"DURABLE!")
        durable = api.tx_commit()
        from repro.core.recovery import RecoveryManager

        pm.machine.crash(at_time=durable)
        RecoveryManager(pm.machine.nvram, pm.machine.log).recover()
        assert pm.machine.nvram.peek(0x2000, 8) == b"DURABLE!"

    def test_crash_before_durability_rolls_back(self, policy):
        """Crashing before the commit record drains loses the transaction
        cleanly (atomicity): the old value is restored."""
        pm = make_pm(policy)
        pm.setup_write(0x2000, b"ORIGINAL")
        api = pm.api(0)
        api.tx_begin()
        api.write(0x2000, b"DOOMED!!")
        from repro.core.recovery import RecoveryManager

        pm.machine.crash(at_time=api.now)  # commit never issued
        RecoveryManager(pm.machine.nvram, pm.machine.log).recover()
        assert pm.machine.nvram.peek(0x2000, 8) == b"ORIGINAL"


class TestInstructionAccounting:
    def test_sw_logging_executes_more_instructions(self):
        def instructions(policy):
            pm = make_pm(policy)
            api = pm.api(0)
            with api.transaction():
                api.compute(20)
                api.write(0x2000, bytes(32))
            return pm.machine.cores[0].instret

        non_pers = instructions(Policy.NON_PERS)
        sw = instructions(Policy.UNSAFE_BASE)
        hw = instructions(Policy.FWB)
        assert sw > 1.8 * non_pers
        assert non_pers < hw < 1.5 * non_pers

    def test_setup_accessors(self):
        pm = make_pm(Policy.FWB)
        pm.setup_write(0x3000, b"seed")
        assert pm.setup_read(0x3000, 4) == b"seed"
        assert pm.machine.stats.instructions == 0
