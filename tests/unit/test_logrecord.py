"""Unit tests for repro.core.logrecord."""

import pytest

from repro.core.logrecord import HEADER_BYTES, LogRecord, RecordKind
from repro.errors import LogError


def data_record(**overrides) -> LogRecord:
    fields = dict(
        kind=RecordKind.DATA,
        txid=42,
        tid=3,
        addr=0x123456789AB,
        undo=b"OLDVALUE",
        redo=b"NEWVALUE",
        torn=1,
    )
    fields.update(overrides)
    return LogRecord(**fields)


class TestValidation:
    def test_txid_16_bits(self):
        with pytest.raises(LogError):
            data_record(txid=1 << 16)

    def test_tid_8_bits(self):
        with pytest.raises(LogError):
            data_record(tid=256)

    def test_addr_48_bits(self):
        with pytest.raises(LogError):
            data_record(addr=1 << 48)

    def test_values_at_most_one_word(self):
        with pytest.raises(LogError):
            data_record(undo=bytes(9))

    def test_torn_is_a_bit(self):
        with pytest.raises(LogError):
            data_record(torn=2)


class TestProperties:
    def test_has_undo_redo(self):
        record = data_record()
        assert record.has_undo and record.has_redo

    def test_undo_only(self):
        record = data_record(redo=b"")
        assert record.has_undo and not record.has_redo

    def test_value_size(self):
        assert data_record().value_size == 8
        assert data_record(undo=b"abc", redo=b"xyz").value_size == 3
        assert LogRecord(RecordKind.COMMIT, 1, 0).value_size == 0

    def test_with_torn(self):
        flipped = data_record(torn=0).with_torn(1)
        assert flipped.torn == 1
        assert flipped.addr == data_record().addr


class TestEncoding:
    def test_roundtrip_full(self):
        record = data_record()
        decoded = LogRecord.decode(record.encode(64))
        assert decoded == record

    def test_roundtrip_32_byte_entry(self):
        record = data_record()
        assert LogRecord.decode(record.encode(32)) == record

    def test_roundtrip_partial_word(self):
        record = data_record(undo=b"abc", redo=b"def")
        assert LogRecord.decode(record.encode(64)) == record

    def test_roundtrip_begin_commit(self):
        for kind in (RecordKind.BEGIN, RecordKind.COMMIT):
            record = LogRecord(kind, 7, 2, torn=1)
            assert LogRecord.decode(record.encode(64)) == record

    def test_roundtrip_single_side(self):
        undo_only = data_record(redo=b"")
        redo_only = data_record(undo=b"")
        assert LogRecord.decode(undo_only.encode(64)) == undo_only
        assert LogRecord.decode(redo_only.encode(64)) == redo_only

    def test_zeroed_entry_decodes_to_none(self):
        assert LogRecord.decode(bytes(64)) is None

    def test_entry_too_small_rejected(self):
        with pytest.raises(LogError):
            data_record().encode(HEADER_BYTES - 1)

    def test_short_buffer_rejected(self):
        with pytest.raises(LogError):
            LogRecord.decode(bytes(16))

    def test_encode_pads_to_entry_size(self):
        assert len(data_record().encode(64)) == 64

    def test_torn_bit_survives(self):
        for torn in (0, 1):
            decoded = LogRecord.decode(data_record(torn=torn).encode(64))
            assert decoded.torn == torn
