"""Tests for the micro-op IR, error hierarchy, and torn-entry handling."""

import pytest

from repro.core.logrecord import LogRecord, RecordKind
from repro.errors import (
    AddressError,
    ConfigError,
    LogError,
    RecoveryError,
    ReproError,
    SimulationError,
    TransactionError,
    WorkloadError,
)
from repro.sim.microops import (
    CLWB,
    Compute,
    Fence,
    Load,
    LogStore,
    MicroOp,
    Store,
    TxBegin,
    TxCommit,
)


class TestErrorHierarchy:
    @pytest.mark.parametrize(
        "exc",
        [
            ConfigError,
            AddressError,
            LogError,
            TransactionError,
            RecoveryError,
            SimulationError,
            WorkloadError,
        ],
    )
    def test_all_derive_from_repro_error(self, exc):
        assert issubclass(exc, ReproError)
        with pytest.raises(ReproError):
            raise exc("boom")


class TestMicroOps:
    def test_all_are_microops(self):
        ops = [
            Compute(1),
            Load(0, 8),
            Store(0, b"x"),
            LogStore(0, b"x"),
            CLWB(0),
            Fence(),
            TxBegin(txid=1),
            TxCommit(txid=1),
        ]
        for op in ops:
            assert isinstance(op, MicroOp)

    def test_frozen(self):
        op = Load(0x100, 8)
        with pytest.raises(AttributeError):
            op.addr = 0x200

    def test_store_defaults(self):
        op = Store(0x100, b"data")
        assert not op.persistent
        assert op.txid == 0 and op.tid == 0

    def test_tx_commit_defaults(self):
        op = TxCommit(txid=5)
        assert not op.wait_for_durability
        assert op.writeback_lines == ()

    def test_load_default_word(self):
        assert Load(0).size == 8


class TestTornEntries:
    """Recovery must reject partially-written (torn) log entries."""

    def _entry(self):
        return LogRecord(
            RecordKind.DATA, 1, 0, 0x100, b"O" * 8, b"N" * 8, torn=1
        ).encode(64)

    def test_intact_entry_decodes(self):
        assert LogRecord.decode(self._entry()) is not None

    @pytest.mark.parametrize("torn_at", [5, 8, 12, 20, 28])
    def test_partial_entry_rejected(self, torn_at):
        """An entry whose tail bytes never arrived fails its checksum."""
        raw = bytearray(self._entry())
        raw[torn_at:32] = bytes(32 - torn_at)
        if raw[4] == 0xA5:  # magic survived: checksum must catch it
            assert LogRecord.decode(bytes(raw)) is None

    def test_single_bitflip_rejected(self):
        raw = bytearray(self._entry())
        raw[16] ^= 0x01  # flip a bit in the undo value
        assert LogRecord.decode(bytes(raw)) is None

    def test_torn_entry_ends_recovery_window(self):
        from repro.core.nvlog import CircularLog
        from repro.core.recovery import RecoveryManager
        from repro.sim.config import NVDimmConfig
        from repro.sim.nvram import NVRAM

        nvram = NVRAM(NVDimmConfig(size_bytes=1024 * 1024))
        log = CircularLog(0x8000, 8, 64)
        for kind in (RecordKind.BEGIN, RecordKind.DATA, RecordKind.COMMIT):
            placed = log.place(
                LogRecord(kind, 1, 0, 0x100 if kind == RecordKind.DATA else 0,
                          b"O" * 8 if kind == RecordKind.DATA else b"",
                          b"N" * 8 if kind == RecordKind.DATA else b"")
            )
            nvram.poke(placed.addr, placed.payload)
        # A fourth entry arrives torn: its header landed but its undo and
        # redo values (bytes 16-31) did not.
        placed = log.place(
            LogRecord(RecordKind.DATA, 2, 0, 0x200, b"U" * 8, b"R" * 8)
        )
        nvram.poke(placed.addr, placed.payload[:12])
        window = RecoveryManager(nvram, log).scan_window()
        assert len(window) == 3  # the torn record is not part of the window
        assert window[-1].kind == RecordKind.COMMIT