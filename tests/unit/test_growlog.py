"""Unit tests for repro.core.growlog (log_grow(), Section IV-A)."""

import pytest

from repro import Machine, PersistentMemory, Policy, RecoveryManager
from repro.core.growlog import (
    DIRECTORY_BYTES,
    MAX_REGIONS,
    GrowableCircularLog,
    RegionDirectory,
)
from repro.core.logrecord import LogRecord, RecordKind
from repro.errors import LogError, SimulationError
from repro.sim.config import LoggingConfig, NVDimmConfig
from repro.sim.nvram import NVRAM
from tests.conftest import tiny_system, word


@pytest.fixture
def nvram():
    return NVRAM(NVDimmConfig(size_bytes=1024 * 1024))


class TestRegionDirectory:
    def test_roundtrip(self, nvram):
        directory = RegionDirectory(nvram, 0x1000)
        directory.write([(0x8000, 16), (0x9000, 16)], entry_size=64)
        assert directory.read() == (64, [(0x8000, 16), (0x9000, 16)])

    def test_absent_directory_reads_none(self, nvram):
        assert RegionDirectory(nvram, 0x1000).read() is None

    def test_too_many_regions_rejected(self, nvram):
        directory = RegionDirectory(nvram, 0x1000)
        with pytest.raises(LogError):
            directory.write([(0, 1)] * (MAX_REGIONS + 1), 64)

    def test_fits_in_one_block(self):
        assert MAX_REGIONS >= 16
        assert DIRECTORY_BYTES == 512


class TestGrowableLog:
    def _make(self, nvram, active):
        allocations = []

        def allocator(size):
            base = 0x40000 + len(allocations) * size
            allocations.append(base)
            return base

        log = GrowableCircularLog(
            0x8000,
            4,
            64,
            64,
            region_allocator=allocator,
            activity_token=lambda pid: 1 if pid in active else None,
            directory=RegionDirectory(nvram, 0x1000),
        )
        return log, allocations

    def test_no_growth_for_inactive_overwrites(self, nvram):
        log, allocations = self._make(nvram, active=set())
        for i in range(10):
            log.place(LogRecord(RecordKind.DATA, 1, 0, 0x100, b"A" * 8, b"B" * 8))
        assert log.grow_count == 0
        assert allocations == []

    def test_grows_instead_of_overwriting_active(self, nvram):
        log, allocations = self._make(nvram, active={1})
        for _ in range(5):  # 5th append would displace txn 1's record
            log.place(LogRecord(RecordKind.DATA, 1, 0, 0x100, b"A" * 8, b"B" * 8))
        assert log.grow_count == 1
        assert len(allocations) == 1
        assert log.base == allocations[0]

    def test_directory_tracks_regions(self, nvram):
        log, _ = self._make(nvram, active={1})
        for _ in range(5):
            log.place(LogRecord(RecordKind.DATA, 1, 0, 0x100, b"A" * 8, b"B" * 8))
        _entry_size, regions = RegionDirectory(nvram, 0x1000).read()
        assert len(regions) == 2
        assert regions[0][0] == 0x8000

    def test_region_views_in_creation_order(self, nvram):
        log, allocations = self._make(nvram, active={1})
        for _ in range(5):
            log.place(LogRecord(RecordKind.DATA, 1, 0, 0x100, b"A" * 8, b"B" * 8))
        views = log.region_views()
        assert [view.base for view in views] == [0x8000, allocations[0]]


class TestMachineIntegration:
    def _machine(self):
        return Machine(
            tiny_system(logging=LoggingConfig(log_entries=16, enable_log_grow=True)),
            Policy.FWB,
        )

    def test_oversized_transaction_commits_and_recovers(self):
        machine = self._machine()
        pm = PersistentMemory(machine)
        api = pm.api(0)
        slots = [pm.heap.alloc(8) for _ in range(40)]
        api.tx_begin()
        for i, addr in enumerate(slots):
            api.write(addr, word(i + 1))
        durable = api.tx_commit()
        assert machine.log.grow_count >= 1
        machine.crash(at_time=durable)
        report = RecoveryManager(machine.nvram, machine.log).recover()
        assert report.committed_instances == 1
        assert report.redo_writes == 40
        for i, addr in enumerate(slots):
            assert machine.nvram.peek(addr, 8) == word(i + 1)

    def test_cold_restart_recovery_from_directory(self):
        machine = self._machine()
        pm = PersistentMemory(machine)
        api = pm.api(0)
        addr = pm.heap.alloc(8)
        api.tx_begin()
        api.write(addr, word(99))
        durable = api.tx_commit()
        machine.crash(at_time=durable)
        manager = RecoveryManager.from_directory(
            machine.nvram, machine.log_directory_addr
        )
        report = manager.recover()
        assert report.committed_instances == 1
        assert machine.nvram.peek(addr, 8) == word(99)

    def test_heap_shrinks_for_arena(self):
        plain = Machine(tiny_system(logging=LoggingConfig(log_entries=16)), Policy.FWB)
        grower = self._machine()
        assert grower.heap_limit < plain.heap_limit

    def test_arena_exhaustion_raises(self):
        machine = Machine(
            tiny_system(
                logging=LoggingConfig(
                    log_entries=16, enable_log_grow=True, log_grow_reserve_regions=1
                )
            ),
            Policy.FWB,
        )
        machine._alloc_grow_region(16 * 64)
        with pytest.raises(SimulationError):
            machine._alloc_grow_region(16 * 64)

    def test_grow_incompatible_with_distributed(self):
        from repro.errors import ConfigError

        with pytest.raises(ConfigError):
            tiny_system(
                logging=LoggingConfig(
                    log_entries=16, enable_log_grow=True, distributed_logs=2
                )
            ).validate()
