"""Unit tests for repro.core.hwl (hardware logging engine)."""

import pytest

from repro.core.logrecord import LogRecord, RecordKind
from repro.core.recovery import RecoveryManager
from repro import Machine, Policy
from tests.conftest import tiny_system


def make_machine(policy=Policy.FWB, **overrides):
    return Machine(tiny_system(**overrides), policy)


def records_in_log(machine):
    manager = RecoveryManager(machine.nvram, machine.log)
    return manager.scan_window()


class TestTransactionLifecycle:
    def test_begin_emitted_on_first_store_only(self):
        m = make_machine()
        m.hwl.on_tx_begin(1, 0, 0.0)
        m.hwl.on_store(0, 1, 0, 0x2000, b"A" * 8, b"B" * 8, 0x2000, 0.0)
        m.hwl.on_store(0, 1, 0, 0x2008, b"C" * 8, b"D" * 8, 0x2000, 1.0)
        m.hwl.on_tx_commit(1, 0, 2.0)
        kinds = [r.kind for r in records_in_log(m)]
        assert kinds == [
            RecordKind.BEGIN,
            RecordKind.DATA,
            RecordKind.DATA,
            RecordKind.COMMIT,
        ]

    def test_empty_transaction_logs_nothing(self):
        m = make_machine()
        m.hwl.on_tx_begin(1, 0, 0.0)
        m.hwl.on_tx_commit(1, 0, 1.0)
        assert records_in_log(m) == []

    def test_commit_releases_physical_txid(self):
        m = make_machine()
        m.hwl.on_tx_begin(1, 0, 0.0)
        m.hwl.on_tx_commit(1, 0, 1.0)
        assert m.registers.active_count == 0

    def test_commit_returns_durable_time(self):
        m = make_machine()
        m.hwl.on_tx_begin(1, 0, 0.0)
        m.hwl.on_store(0, 1, 0, 0x2000, b"A" * 8, b"B" * 8, 0x2000, 0.0)
        durable = m.hwl.on_tx_commit(1, 0, 5.0)
        assert durable > 5.0

    def test_interleaved_transactions(self):
        m = make_machine()
        m.hwl.on_tx_begin(1, 0, 0.0)
        m.hwl.on_tx_begin(2, 1, 0.0)
        m.hwl.on_store(0, 1, 0, 0x2000, b"A" * 8, b"B" * 8, 0x2000, 0.0)
        m.hwl.on_store(1, 2, 1, 0x3000, b"C" * 8, b"D" * 8, 0x3000, 0.0)
        m.hwl.on_tx_commit(2, 1, 1.0)
        m.hwl.on_tx_commit(1, 0, 2.0)
        window = records_in_log(m)
        tids = {r.tid for r in window if r.kind == RecordKind.DATA}
        assert tids == {0, 1}


class TestRecordContents:
    def test_undo_and_redo_values(self):
        m = make_machine()
        m.hwl.on_tx_begin(1, 0, 0.0)
        m.hwl.on_store(0, 1, 0, 0x2000, b"OLDOLD!!", b"NEWNEW!!", 0x2000, 0.0)
        m.hwl.on_tx_commit(1, 0, 1.0)
        data = [r for r in records_in_log(m) if r.kind == RecordKind.DATA][0]
        assert data.undo == b"OLDOLD!!"
        assert data.redo == b"NEWNEW!!"
        assert data.addr == 0x2000

    def test_hw_ulog_records_undo_only(self):
        m = make_machine(Policy.HW_ULOG)
        m.hwl.on_tx_begin(1, 0, 0.0)
        m.hwl.on_store(0, 1, 0, 0x2000, b"OLDOLD!!", b"NEWNEW!!", 0x2000, 0.0)
        m.hwl.on_tx_commit(1, 0, 1.0)
        data = [r for r in records_in_log(m) if r.kind == RecordKind.DATA][0]
        assert data.has_undo and not data.has_redo

    def test_hw_rlog_records_redo_only(self):
        m = make_machine(Policy.HW_RLOG)
        m.hwl.on_tx_begin(1, 0, 0.0)
        m.hwl.on_store(0, 1, 0, 0x2000, b"OLDOLD!!", b"NEWNEW!!", 0x2000, 0.0)
        m.hwl.on_tx_commit(1, 0, 1.0)
        data = [r for r in records_in_log(m) if r.kind == RecordKind.DATA][0]
        assert data.has_redo and not data.has_undo


class TestOrderingGuarantee:
    def test_store_receives_log_release(self):
        m = make_machine()
        m.hwl.on_tx_begin(1, 0, 0.0)
        _stall, release = m.hwl.on_store(
            0, 1, 0, 0x2000, b"A" * 8, b"B" * 8, 0x2000, 0.0
        )
        assert release > 0.0

    def test_releases_monotone_per_engine(self):
        m = make_machine()
        m.hwl.on_tx_begin(1, 0, 0.0)
        releases = []
        for i in range(10):
            _stall, release = m.hwl.on_store(
                0, 1, 0, 0x2000 + i * 8, b"A" * 8, b"B" * 8, 0x2000, float(i)
            )
            releases.append(release)
        assert releases == sorted(releases)


class TestWrapProtection:
    def test_wrap_forces_dirty_displaced_line(self):
        m = make_machine(logging=tiny_system().logging.__class__(log_entries=8))
        # Dirty a data line whose log entry will be displaced.
        m.hierarchy.store(0, 0x2000, b"D" * 8, 0.0)
        m.hwl.on_tx_begin(1, 0, 0.0)
        m.hwl.on_store(0, 1, 0, 0x2000, b"A" * 8, b"D" * 8, 0x2000, 0.0)
        # Fill the ring so the 0x2000 entry gets overwritten.
        for i in range(8):
            m.hwl.on_store(0, 1, 0, 0x3000 + i * 8, b"A" * 8, b"B" * 8, 0x3000, 1.0)
        assert m.stats.log_wrap_forced_writebacks >= 1
        assert not m.hierarchy.is_line_dirty(0x2000)

    def test_unsafe_hw_logging_skips_protection(self):
        m = make_machine(
            Policy.HW_ULOG, logging=tiny_system().logging.__class__(log_entries=8)
        )
        m.hierarchy.store(0, 0x2000, b"D" * 8, 0.0)
        m.hwl.on_tx_begin(1, 0, 0.0)
        for i in range(12):
            m.hwl.on_store(0, 1, 0, 0x2000 + i * 8, b"A" * 8, b"B" * 8, 0x2000, 0.0)
        assert m.stats.log_wrap_forced_writebacks == 0
