"""Unit tests for repro.utils."""

import pytest

from repro.errors import AddressError, ConfigError
from repro.utils import (
    WORD_SIZE,
    align_down,
    align_up,
    check_range,
    int_to_word,
    is_power_of_two,
    line_address,
    ns_to_cycles,
    require_power_of_two,
    split_words,
    word_to_int,
)


class TestPowerOfTwo:
    def test_accepts_powers(self):
        for exp in range(20):
            assert is_power_of_two(1 << exp)

    def test_rejects_non_powers(self):
        for value in (0, -1, 3, 6, 12, 100):
            assert not is_power_of_two(value)

    def test_require_returns_value(self):
        assert require_power_of_two(64, "x") == 64

    def test_require_raises(self):
        with pytest.raises(ConfigError, match="line size"):
            require_power_of_two(63, "line size")


class TestAlignment:
    def test_align_down(self):
        assert align_down(0x1234, 64) == 0x1200

    def test_align_down_already_aligned(self):
        assert align_down(0x1240, 64) == 0x1240

    def test_align_up(self):
        assert align_up(0x1201, 64) == 0x1240

    def test_align_up_already_aligned(self):
        assert align_up(0x1240, 64) == 0x1240

    def test_line_address(self):
        assert line_address(0x107F, 64) == 0x1040


class TestSplitWords:
    def test_aligned_single_word(self):
        assert split_words(0, b"abcdefgh") == [(0, b"abcdefgh")]

    def test_aligned_two_words(self):
        pieces = split_words(8, bytes(16))
        assert pieces == [(8, bytes(8)), (16, bytes(8))]

    def test_unaligned_start(self):
        pieces = split_words(5, b"abcdef")
        assert pieces == [(5, b"abc"), (8, b"def")]

    def test_no_piece_crosses_word_boundary(self):
        for addr in range(0, 16):
            for size in range(1, 25):
                for piece_addr, piece in split_words(addr, bytes(size)):
                    start_word = piece_addr // WORD_SIZE
                    end_word = (piece_addr + len(piece) - 1) // WORD_SIZE
                    assert start_word == end_word

    def test_pieces_cover_exactly(self):
        pieces = split_words(3, bytes(range(20)))
        total = sum(len(p) for _a, p in pieces)
        assert total == 20
        assert pieces[0][0] == 3

    def test_empty_write(self):
        assert split_words(0, b"") == []


class TestWords:
    def test_roundtrip(self):
        for value in (0, 1, 0xDEADBEEF, (1 << 64) - 1):
            assert word_to_int(int_to_word(value)) == value

    def test_short_piece_decode(self):
        assert word_to_int(b"\x05") == 5


class TestCheckRange:
    def test_in_range(self):
        check_range(0, 10, 10)

    def test_out_of_range(self):
        with pytest.raises(AddressError):
            check_range(5, 6, 10)

    def test_negative(self):
        with pytest.raises(AddressError):
            check_range(-1, 4, 10)


class TestNsToCycles:
    def test_table_ii_l1(self):
        assert ns_to_cycles(1.6, 2.5) == 4

    def test_table_ii_llc(self):
        assert ns_to_cycles(4.4, 2.5) == 11

    def test_table_ii_row_hit(self):
        assert ns_to_cycles(36.0, 2.5) == 90

    def test_minimum_one_cycle(self):
        assert ns_to_cycles(0.01, 2.5) == 1
