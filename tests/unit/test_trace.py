"""Tests for the optional execution tracer."""

import pytest

from repro import Machine, PersistentMemory, Policy
from repro.sim.config import LoggingConfig
from repro.sim.trace import TraceEvent, Tracer
from tests.conftest import tiny_system, word


class TestTracer:
    def test_emit_and_filter(self):
        tracer = Tracer()
        tracer.emit(1.0, "a", 0)
        tracer.emit(2.0, "b", 1, extra=5)
        assert len(tracer) == 2
        assert [e.kind for e in tracer.events()] == ["a", "b"]
        assert tracer.events("b")[0].detail == {"extra": 5}
        assert tracer.counts["a"] == 1

    def test_capacity_bound(self):
        tracer = Tracer(capacity=3)
        for i in range(10):
            tracer.emit(float(i), "x", 0)
        assert len(tracer) == 3
        assert tracer.counts["x"] == 10  # counts keep the full tally

    def test_events_are_frozen(self):
        event = TraceEvent(1.0, "a", 0)
        with pytest.raises(AttributeError):
            event.kind = "b"

    def test_kind_strings_are_interned(self):
        tracer = Tracer()
        tracer.emit(1.0, "store" + "x"[:0], 0)  # defeat literal interning
        tracer.emit(2.0, "store", 1)
        first, second = tracer.events()
        assert first.kind is second.kind

    def test_detail_key_may_shadow_parameter_names(self):
        # emit's leading params are positional-only so log records can
        # carry their own `kind` (and `time`, `core`) in detail.
        tracer = Tracer()
        tracer.emit(1.0, "log_place", 0, kind="COMMIT", time=99)
        event = tracer.events()[0]
        assert event.kind == "log_place"
        assert event.detail == {"kind": "COMMIT", "time": 99}

    def test_dropped_counter_and_summary(self):
        tracer = Tracer(capacity=3)
        for i in range(10):
            tracer.emit(float(i), "x", 0)
        assert tracer.dropped == 7
        assert "dropped (capacity)" in tracer.summary()
        assert "7" in tracer.summary()

    def test_no_drop_no_summary_line(self):
        tracer = Tracer()
        tracer.emit(1.0, "x", 0)
        assert tracer.dropped == 0
        assert "dropped" not in tracer.summary()

    def test_subscribers_see_evicted_events(self):
        tracer = Tracer(capacity=2)
        seen = []
        tracer.subscribe(seen.append)
        for i in range(5):
            tracer.emit(float(i), "x", 0)
        assert len(seen) == 5  # ring kept 2, listener saw all
        tracer.unsubscribe(seen.append)
        tracer.emit(9.0, "x", 0)
        assert len(seen) == 5

    def test_jsonl_roundtrip(self, tmp_path):
        tracer = Tracer()
        tracer.emit(1.0, "tx_begin", 0, tid=0, txid=7)
        tracer.emit(2.5, "store", 1, addr=0x1234)
        path = str(tmp_path / "trace.jsonl")
        assert tracer.to_jsonl(path) == 2
        loaded = Tracer.from_jsonl(path)
        assert [
            (e.time, e.kind, e.core, e.detail) for e in loaded.events()
        ] == [
            (1.0, "tx_begin", 0, {"tid": 0, "txid": 7}),
            (2.5, "store", 1, {"addr": 0x1234}),
        ]
        assert loaded.dropped == 0


class TestMachineIntegration:
    def _run(self, logging=None):
        machine = Machine(
            tiny_system(logging=logging or LoggingConfig(log_entries=128)),
            Policy.FWB,
        )
        machine.tracer = Tracer()
        pm = PersistentMemory(machine)
        api = pm.api(0)
        addr = pm.heap.alloc(8)
        for value in range(12):
            with api.transaction():
                api.write(addr, word(value))
        return machine

    def test_transactions_traced(self):
        machine = self._run()
        tracer = machine.tracer
        assert tracer.counts["tx_begin"] == 12
        assert tracer.counts["tx_commit"] == 12

    def test_commit_lags_positive_under_fwb(self):
        """Steal-but-no-force: durability trails the instant commit."""
        machine = self._run()
        lags = machine.tracer.commit_lags()
        assert len(lags) == 12
        assert all(lag > 0 for lag in lags)

    def test_wrap_forces_traced_with_tiny_log(self):
        machine = self._run(logging=LoggingConfig(log_entries=8))
        assert machine.tracer.counts["log_wrap_force"] >= 1

    def test_crash_traced(self):
        machine = self._run()
        machine.crash()
        assert machine.tracer.counts["crash"] == 1

    def test_summary_renders(self):
        machine = self._run()
        summary = machine.tracer.summary()
        assert "tx_commit" in summary
        assert "commit durability lag" in summary

    def test_untraced_machine_records_nothing(self):
        machine = Machine(tiny_system(), Policy.FWB)
        assert machine.tracer is None  # default: zero overhead
