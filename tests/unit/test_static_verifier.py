"""Unit tests for the static persistency verifier (repro.sanitizer.static).

Every rule's proof *and* counterexample path is exercised on synthetic
compiled traces (built by ``tests.conftest.synthetic_trace``), so each
case pins one row of the decision table without compiling a workload.
The ship-schedule half runs against one small traced primary run, the
same shape the dist suite uses.
"""

from __future__ import annotations

import pytest

from repro import SystemConfig
from repro.core.design import resolve_design
from repro.sanitizer.static import (
    NOT_APPLICABLE,
    PROVEN,
    VIOLATED,
    StaticReport,
    verify_ship_schedule,
    verify_trace,
)
from repro.sanitizer.rules import REPLICATION_RULE_IDS, RULES
from repro.sim.config import LoggingConfig
from tests.conftest import synthetic_trace

A = 0x1000
B = 0x2000


def small_system(**logging_overrides) -> SystemConfig:
    return SystemConfig(logging=LoggingConfig(**logging_overrides))


def one_txn(addr=A):
    """One committed transaction storing one 8-byte word."""
    return [("begin",), ("write", (addr, 8)), ("commit",)]


class TestUndoMissing:
    def test_redo_only_hw_violates(self):
        trace = synthetic_trace(one_txn())
        report = verify_trace(trace, "hw-rlog", system=small_system(), hb=False)
        verdict = report.verdicts["undo-missing"]
        assert verdict.verdict == VIOLATED
        assert verdict.counterexample.addr == A
        assert verdict.counterexample.tid == 0

    def test_open_transaction_store_still_witnesses(self):
        # An uncommitted transaction's in-place store is exactly the
        # crash window undo logging exists for.
        trace = synthetic_trace([("begin",), ("write", (A, 8))])
        report = verify_trace(trace, "hw-rlog", system=small_system(), hb=False)
        assert report.verdicts["undo-missing"].verdict == VIOLATED

    @pytest.mark.parametrize("policy", ["hw-ulog", "hwl", "undo-clwb", "fwb"])
    def test_undo_content_proves(self, policy):
        trace = synthetic_trace(one_txn())
        report = verify_trace(trace, policy, system=small_system(), hb=False)
        assert report.verdicts["undo-missing"].verdict == PROVEN

    def test_deferred_stores_prove(self):
        trace = synthetic_trace(one_txn())
        report = verify_trace(trace, "redo-clwb", system=small_system(), hb=False)
        verdict = report.verdicts["undo-missing"]
        assert verdict.verdict == PROVEN
        assert "defer" in verdict.reason

    def test_vacuous_without_transactional_stores(self):
        trace = synthetic_trace([("begin",), ("commit",)])
        report = verify_trace(trace, "hw-rlog", system=small_system(), hb=False)
        assert report.verdicts["undo-missing"].verdict == PROVEN


class TestRedoMissing:
    def test_undo_only_hw_violates(self):
        trace = synthetic_trace(one_txn())
        report = verify_trace(trace, "hw-ulog", system=small_system(), hb=False)
        verdict = report.verdicts["redo-missing"]
        assert verdict.verdict == VIOLATED
        assert verdict.counterexample.txn_ordinal == 0

    @pytest.mark.parametrize("policy", ["hw-rlog", "hwl", "redo-clwb", "fwb"])
    def test_redo_content_proves(self, policy):
        trace = synthetic_trace(one_txn())
        report = verify_trace(trace, policy, system=small_system(), hb=False)
        assert report.verdicts["redo-missing"].verdict == PROVEN

    def test_clwb_fenced_sw_undo_proves(self):
        # undo-clwb has no redo content, but the write set is flushed
        # and fenced before the commit record exists.
        trace = synthetic_trace(one_txn())
        report = verify_trace(trace, "undo-clwb", system=small_system(), hb=False)
        assert report.verdicts["redo-missing"].verdict == PROVEN

    def test_unfenced_sw_commit_stays_buffered(self):
        # One transaction places 3 records; with a 6-entry WCB the
        # commit record never drains, so there is nothing to recover
        # against — vacuously proven, exactly like the dynamic checker.
        trace = synthetic_trace(one_txn())
        report = verify_trace(
            trace, "unsafe-base", system=small_system(wcb_entries=6), hb=False
        )
        assert report.verdicts["redo-missing"].verdict == PROVEN
        assert "buffered" in report.verdicts["redo-missing"].reason

    def test_unfenced_sw_commit_drains_under_pressure(self):
        # Five transactions push 15 records through the 6-entry WCB:
        # the early commit records drain, and their data has neither
        # been written back nor redo-logged.
        trace = synthetic_trace(one_txn() * 5)
        report = verify_trace(
            trace, "unsafe-base", system=small_system(wcb_entries=6), hb=False
        )
        verdict = report.verdicts["redo-missing"]
        assert verdict.verdict == VIOLATED
        assert verdict.counterexample.addr == A


class TestCommitDurability:
    def test_instant_commit_violates(self):
        trace = synthetic_trace(one_txn())
        report = verify_trace(trace, "unsafe-base", system=small_system(), hb=False)
        verdict = report.verdicts["commit-durability"]
        assert verdict.verdict == VIOLATED
        assert verdict.counterexample.txn_ordinal == 0

    @pytest.mark.parametrize(
        "policy", ["undo-clwb", "redo-clwb", "hw-rlog", "hw-ulog", "hwl", "fwb"]
    )
    def test_fenced_commit_proves(self, policy):
        trace = synthetic_trace(one_txn())
        report = verify_trace(trace, policy, system=small_system(), hb=False)
        assert report.verdicts["commit-durability"].verdict == PROVEN

    def test_storeless_txn_places_no_hw_commit_record(self):
        # The hardware engine appends nothing for an empty transaction,
        # so there is no commit record whose durability could be
        # misreported — but software logging always places one.
        trace = synthetic_trace([("begin",), ("commit",)])
        hw = verify_trace(trace, "hw-ulog", system=small_system(), hb=False)
        sw = verify_trace(trace, "unsafe-base", system=small_system(), hb=False)
        assert hw.verdicts["commit-durability"].verdict == PROVEN
        assert sw.verdicts["commit-durability"].verdict == VIOLATED


class TestWrapOverwrite:
    def wide_txn(self):
        pieces = tuple((A + 8 * i, 8) for i in range(4))
        return [("begin",), ("write", *pieces), ("commit",)]

    def test_unprotected_wrap_violates(self):
        # 6 records into a 4-entry ring, no wrap protection.
        trace = synthetic_trace(self.wide_txn())
        report = verify_trace(
            trace, "hw-ulog", system=small_system(log_entries=4), hb=False
        )
        verdict = report.verdicts["wrap-overwrite"]
        assert verdict.verdict == VIOLATED
        assert "capacity exceeded by 2" in verdict.counterexample.detail

    def test_wrap_protection_proves(self):
        trace = synthetic_trace(self.wide_txn())
        report = verify_trace(
            trace, "fwb", system=small_system(log_entries=4), hb=False
        )
        verdict = report.verdicts["wrap-overwrite"]
        assert verdict.verdict == PROVEN
        assert "wrap protection" in verdict.reason

    def test_ring_large_enough_proves(self):
        trace = synthetic_trace(self.wide_txn())
        report = verify_trace(
            trace, "hw-ulog", system=small_system(log_entries=64), hb=False
        )
        assert report.verdicts["wrap-overwrite"].verdict == PROVEN

    def test_storeless_txns_place_no_hw_records(self):
        trace = synthetic_trace([("begin",), ("commit",)] * 8)
        report = verify_trace(
            trace, "hw-ulog", system=small_system(log_entries=4), hb=False
        )
        assert report.verdicts["wrap-overwrite"].verdict == PROVEN


class TestUnloggedMutation:
    def test_write_outside_txn_violates(self):
        trace = synthetic_trace([("write", (B, 8))])
        report = verify_trace(trace, "undo-clwb", system=small_system(), hb=False)
        verdict = report.verdicts["unlogged-mutation"]
        assert verdict.verdict == VIOLATED
        assert verdict.counterexample.addr == B

    def test_deferred_flush_of_committed_set_is_sanctioned(self):
        # redo-clwb's runtime flushes the just-committed write set
        # after tx_commit; a post-span write to a committed address is
        # that flush, not an unlogged mutation.
        trace = synthetic_trace(one_txn(A) + [("write", (A, 8))])
        report = verify_trace(trace, "redo-clwb", system=small_system(), hb=False)
        assert report.verdicts["unlogged-mutation"].verdict == PROVEN

    def test_deferred_flush_to_fresh_address_still_violates(self):
        trace = synthetic_trace(one_txn(A) + [("write", (B, 8))])
        report = verify_trace(trace, "redo-clwb", system=small_system(), hb=False)
        assert report.verdicts["unlogged-mutation"].verdict == VIOLATED

    def test_non_deferring_design_gets_no_sanction(self):
        trace = synthetic_trace(one_txn(A) + [("write", (A, 8))])
        report = verify_trace(trace, "undo-clwb", system=small_system(), hb=False)
        assert report.verdicts["unlogged-mutation"].verdict == VIOLATED


class TestAxiomRules:
    @pytest.mark.parametrize(
        "rule", ["steal-order", "commit-order", "fifo-order", "torn-parity"]
    )
    @pytest.mark.parametrize("policy", ["unsafe-base", "hw-ulog", "hwl", "fwb"])
    def test_architecturally_proven(self, rule, policy):
        trace = synthetic_trace(one_txn())
        report = verify_trace(trace, policy, system=small_system(), hb=False)
        assert report.verdicts[rule].verdict == PROVEN


class TestNonPersistent:
    def test_everything_not_applicable(self):
        trace = synthetic_trace(one_txn() + [("write", (B, 8))])
        report = verify_trace(trace, "non-pers", system=small_system())
        assert report.rules_checked == ()
        assert set(report.verdicts) == set(RULES)
        assert all(v.verdict == NOT_APPLICABLE for v in report.verdicts.values())
        assert report.clean
        assert report.races is not None  # hb still runs


class TestReportShape:
    def test_counters_and_round_trip(self):
        trace = synthetic_trace(one_txn(), one_txn(B))
        report = verify_trace(trace, "hwl", system=small_system(), hb=False)
        assert report.ops_examined == 6
        assert report.pieces_examined == 2
        assert report.txns_seen == 2
        assert report.cost() == 8
        data = report.to_dict()
        assert data["clean"] and data["threads"] == 2
        assert set(data["verdicts"]) == set(report.rules_checked)

    def test_rules_fired_matches_violations(self):
        trace = synthetic_trace(one_txn())
        report = verify_trace(trace, "hw-rlog", system=small_system(), hb=False)
        assert report.rules_fired() == {"undo-missing"}
        assert not report.clean
        rendered = report.render()
        assert "undo-missing" in rendered and "witness" in rendered

    def test_replication_rules_proven_on_single_machine(self):
        trace = synthetic_trace(one_txn())
        report = verify_trace(trace, "hwl", system=small_system(), hb=False)
        for rule in REPLICATION_RULE_IDS:
            assert report.verdicts[rule].verdict == PROVEN


# ----------------------------------------------------------------------
# Ship-schedule verification (one small traced run, dist-suite shape)
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def ship_stream():
    from repro.dist import DistConfig, traced_primary_run
    from repro.faults.campaign import campaign_workload, default_campaign_system
    from repro.harness.runner import prepare_workload

    prepared = prepare_workload(
        campaign_workload("hash", 4), default_campaign_system()
    )
    stream, _golden, outcome = traced_primary_run(
        prepared, resolve_design("hwl"), threads=2, txns_per_thread=8
    )
    yield stream, DistConfig(nodes=3, replicas=2)
    outcome.machine.nvram.recycle()


class TestShipSchedule:
    def test_baseline_schedule_proves_all_rules(self, ship_stream):
        from repro.dist import ShipTimeline

        stream, config = ship_stream
        verdicts = verify_ship_schedule(ShipTimeline(stream, config))
        assert set(verdicts) == set(REPLICATION_RULE_IDS)
        assert all(v.verdict == PROVEN for v in verdicts.values())

    def test_early_ack_trips_ack_durable(self, ship_stream):
        from repro.dist import ShipTimeline

        stream, config = ship_stream
        verdicts = verify_ship_schedule(
            ShipTimeline(stream, config, unsafe_early_ack=True)
        )
        verdict = verdicts["repl-ack-durable"]
        assert verdict.verdict == VIOLATED
        assert "acks batch" in verdict.counterexample.detail

    def test_link_faults_recover_cleanly(self, ship_stream):
        from repro.dist import LinkFault, ShipTimeline

        stream, config = ship_stream
        for fault_kind in ("drop", "dup"):
            timeline = ShipTimeline(
                stream, config, faults=(LinkFault(fault_kind, 1, 1),)
            )
            verdicts = verify_ship_schedule(timeline)
            assert all(
                v.verdict == PROVEN for v in verdicts.values()
            ), fault_kind
