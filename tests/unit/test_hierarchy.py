"""Unit tests for repro.sim.hierarchy (two-level functional hierarchy)."""

import pytest

from repro.errors import SimulationError
from repro.sim.config import CacheConfig, SystemConfig, NVDimmConfig
from repro.sim.energy import EnergyModel
from repro.sim.hierarchy import CacheHierarchy
from repro.sim.memctrl import MemoryController
from repro.sim.nvram import NVRAM
from repro.sim.stats import MachineStats


def make_hierarchy(num_cores=2):
    config = SystemConfig(
        num_cores=num_cores,
        l1=CacheConfig(size_bytes=512, ways=2),
        llc=CacheConfig(size_bytes=2048, ways=4, latency_ns=4.4),
        nvram=NVDimmConfig(size_bytes=1024 * 1024),
    )
    stats = MachineStats()
    nvram = NVRAM(config.nvram)
    energy = EnergyModel(config.energy, stats)
    mc = MemoryController(config.memctrl, config.nvram, nvram, energy, stats, 2.5)
    return CacheHierarchy(config, mc, energy, stats), nvram, stats


class TestLoadPath:
    def test_cold_load_comes_from_memory(self):
        h, nvram, stats = make_hierarchy()
        nvram.poke(100, b"\xAB")
        result = h.load(0, 100, 1, 0.0)
        assert result.data == b"\xAB"
        assert result.level == "mem"
        assert stats.l1_misses == 1
        assert stats.llc_misses == 1

    def test_second_load_hits_l1(self):
        h, _, stats = make_hierarchy()
        h.load(0, 100, 1, 0.0)
        result = h.load(0, 100, 1, 1.0)
        assert result.level == "l1"
        assert stats.l1_hits == 1

    def test_other_core_hits_llc(self):
        h, _, stats = make_hierarchy()
        h.load(0, 100, 1, 0.0)
        result = h.load(1, 100, 1, 1.0)
        assert result.level == "llc"
        assert stats.llc_hits == 1

    def test_latency_ordering(self):
        h, _, _ = make_hierarchy()
        mem = h.load(0, 0, 8, 0.0).latency
        l1 = h.load(0, 0, 8, 1.0).latency
        llc = h.load(1, 0, 8, 2.0).latency
        assert l1 < llc < mem

    def test_cross_line_access_rejected(self):
        h, _, _ = make_hierarchy()
        with pytest.raises(SimulationError):
            h.load(0, 60, 8, 0.0)


class TestStorePath:
    def test_store_returns_old_data(self):
        h, nvram, _ = make_hierarchy()
        nvram.poke(64, b"OLDVALUE")
        result = h.store(0, 64, b"NEWVALUE", 0.0)
        assert result.old_data == b"OLDVALUE"

    def test_store_hit_returns_cached_old(self):
        h, _, _ = make_hierarchy()
        h.store(0, 64, b"AAAA", 0.0)
        result = h.store(0, 64, b"BBBB", 1.0)
        assert result.old_data == b"AAAA"
        assert result.level == "l1"

    def test_store_sets_dirty(self):
        h, _, _ = make_hierarchy()
        h.store(0, 64, b"AAAA", 0.0)
        assert h.is_line_dirty(64)

    def test_store_does_not_write_nvram(self):
        h, nvram, _ = make_hierarchy()
        h.store(0, 64, b"AAAA", 0.0)
        assert nvram.peek(64, 4) == bytes(4)

    def test_write_invalidates_remote_copy(self):
        h, _, stats = make_hierarchy()
        h.load(1, 64, 8, 0.0)  # core 1 caches the line
        h.store(0, 64, b"XX", 1.0)
        assert h.l1s[1].lookup(64) is None
        assert stats.coherence_invalidations >= 1

    def test_read_pulls_remote_dirty_data(self):
        h, _, _ = make_hierarchy()
        h.store(0, 64, b"DIRTY!", 0.0)
        result = h.load(1, 64, 6, 1.0)
        assert result.data == b"DIRTY!"


class TestEvictionAndInclusion:
    def test_dirty_l1_victim_merges_into_llc(self):
        h, _, _ = make_hierarchy()
        # L1 has 4 sets x 2 ways; same-set lines are 256B apart.
        h.store(0, 0, b"ZZ", 0.0)
        h.load(0, 256, 1, 1.0)
        h.load(0, 512, 1, 2.0)  # evicts line 0 from L1
        assert h.l1s[0].lookup(0) is None
        llc_line = h.llc.lookup(0)
        assert llc_line.dirty
        assert bytes(llc_line.data[:2]) == b"ZZ"

    def test_llc_eviction_writes_back_dirty(self):
        h, nvram, stats = make_hierarchy()
        h.store(0, 0, b"PERSIST!", 0.0)
        # LLC: 8 sets x 4 ways; same LLC set lines are 512B apart.
        for i in range(1, 9):
            h.load(0, i * 512, 1, float(i))
        assert stats.writebacks >= 1
        assert nvram.peek(0, 8) == b"PERSIST!"

    def test_llc_eviction_invalidates_l1_copies(self):
        h, _, _ = make_hierarchy()
        h.store(0, 0, b"X", 0.0)
        for i in range(1, 9):
            h.load(1, i * 512, 1, float(i))
        # Inclusion: once the LLC dropped line 0, no L1 may hold it.
        if h.llc.lookup(0) is None:
            assert h.l1s[0].lookup(0) is None


class TestCLWB:
    def test_clwb_writes_newest_data(self):
        h, nvram, _ = make_hierarchy()
        h.store(0, 64, b"COMMITME", 0.0)
        completion = h.clwb(0, 64, 1.0)
        assert completion is not None
        assert nvram.peek(64, 8) == b"COMMITME"

    def test_clwb_clean_line_is_noop(self):
        h, _, _ = make_hierarchy()
        h.load(0, 64, 8, 0.0)
        assert h.clwb(0, 64, 1.0) is None

    def test_clwb_keeps_line_cached_clean(self):
        h, _, _ = make_hierarchy()
        h.store(0, 64, b"DATA", 0.0)
        h.clwb(0, 64, 1.0)
        line = h.l1s[0].lookup(64)
        assert line is not None
        assert not line.dirty
        assert not h.is_line_dirty(64)

    def test_clwb_respects_log_release(self):
        h, _, _ = make_hierarchy()
        h.store(0, 64, b"DATA", 0.0)
        h.set_log_release(0, 64, 5000.0)
        completion = h.clwb(0, 64, 1.0)
        assert completion > 5000.0


class TestScanTax:
    def test_debt_paid_one_cycle_at_a_time(self):
        h, _, stats = make_hierarchy()
        h.load(0, 0, 8, 0.0)
        base = h.load(0, 0, 8, 1.0).latency
        h.add_scan_debt(2.0)
        taxed = h.load(0, 0, 8, 2.0).latency
        assert taxed == base + 1.0
        assert stats.fwb_tax_cycles == 1.0
        h.load(0, 0, 8, 3.0)
        assert h.scan_debt == 0.0


class TestCrash:
    def test_drop_all_clears_everything(self):
        h, _, _ = make_hierarchy()
        h.store(0, 0, b"GONE", 0.0)
        h.drop_all()
        assert h.l1s[0].occupancy == 0
        assert h.llc.occupancy == 0
        assert not h.is_line_dirty(0)
