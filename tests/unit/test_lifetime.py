"""Unit tests for repro.core.lifetime (Section III-F arithmetic)."""

import pytest

from repro import SystemConfig
from repro.core.lifetime import (
    log_pass_period_seconds,
    log_region_lifetime_days,
    wear_report,
)
from repro.sim.config import LoggingConfig
from repro.sim.stats import MachineStats


class TestPaperArithmetic:
    def test_pass_period_matches_paper(self):
        # 64K entries x 200 ns = 13.1 ms per pass.
        period = log_pass_period_seconds(SystemConfig())
        assert period == pytest.approx(65536 * 200e-9)

    def test_fifteen_days_example(self):
        days = log_region_lifetime_days(SystemConfig())
        assert 14.0 < days < 16.0  # the paper says "15 days"

    def test_lifetime_scales_with_log_size(self):
        small = SystemConfig(logging=LoggingConfig(log_entries=1024))
        assert log_region_lifetime_days(small) == pytest.approx(
            log_region_lifetime_days(SystemConfig()) / 64
        )

    def test_lifetime_scales_with_endurance(self):
        config = SystemConfig()
        assert log_region_lifetime_days(config, endurance_writes=2e8) == pytest.approx(
            2 * log_region_lifetime_days(config)
        )


class TestWearReport:
    def test_decomposition(self):
        stats = MachineStats(nvram_write_bytes=1000, log_bytes=600)
        report = wear_report(stats)
        assert report.log_bytes == 600
        assert report.data_bytes == 400
        assert report.amplification == pytest.approx(2.5)
        assert report.log_share == pytest.approx(0.6)

    def test_no_data_writes_is_infinite_amplification(self):
        stats = MachineStats(nvram_write_bytes=500, log_bytes=500)
        assert wear_report(stats).amplification == float("inf")

    def test_idle_run(self):
        report = wear_report(MachineStats())
        assert report.total_bytes == 0
        assert report.log_share == 0.0
