"""Per-rule tests for the persistency-ordering checker.

Every psan rule gets a pair of synthetic traces: one that violates the
invariant (the rule must fire, and only that rule unless noted) and the
minimally-fixed twin (the checker must stay quiet).  Building the traces
by hand keeps each test a readable statement of the invariant, decoupled
from any simulator behaviour.
"""

from repro.sanitizer.checker import PersistOrderChecker
from repro.sanitizer.rules import RULES
from repro.sim.trace import TraceEvent

HEAP_BASE = 0x10000
HEAP_LIMIT = 0x20000
LOG_BASE = 0x1000
ENTRY = 64
ADDR = HEAP_BASE + 0x40


class Trace:
    """Tiny builder for synthetic psan event streams."""

    def __init__(self, policy="hwl"):
        self.events = [
            TraceEvent(
                0.0,
                "meta",
                -1,
                {
                    "policy": policy,
                    "heap_base": HEAP_BASE,
                    "heap_limit": HEAP_LIMIT,
                    "line_size": 64,
                    "log_entry_size": ENTRY,
                    "log_regions": [[LOG_BASE, ENTRY * 64]],
                },
            )
        ]

    def emit(self, time, kind, core=-1, /, **detail):
        self.events.append(TraceEvent(time, kind, core, detail))
        return self

    def begin(self, time, tid=0, txid=1):
        return self.emit(time, "tx_begin", tid, tid=tid, txid=txid)

    def commit(self, time, tid=0, txid=1):
        return self.emit(time, "tx_commit", tid, tid=tid, txid=txid)

    def reported(self, time, durable, tid=0, txid=1):
        return self.emit(
            time, "commit_reported", tid, tid=tid, txid=txid, durable=durable
        )

    def store(self, time, addr=ADDR, tid=0):
        return self.emit(time, "store", tid, addr=addr)

    def place(
        self,
        time,
        kind="DATA",
        addr=ADDR,
        undo="aa",
        redo="bb",
        slot=0,
        torn=1,
        release=None,
        tid=0,
        txid=1,
        force_completion=None,
        displaced_line=None,
        displaced_dirty=False,
    ):
        return self.emit(
            time,
            "log_place",
            tid,
            kind=kind,
            txid=txid,
            tid=tid,
            addr=addr if kind == "DATA" else None,
            undo=undo if kind == "DATA" else "",
            redo=redo if kind == "DATA" else "",
            entry_addr=LOG_BASE + slot * ENTRY,
            slot=slot,
            base=LOG_BASE,
            torn=torn,
            release=release,
            force_completion=force_completion,
            displaced_line=displaced_line,
            displaced_dirty=displaced_dirty,
        )

    def nvram(self, time, addr, size=8, completion=None):
        return self.emit(
            time, "nvram_write", -1, addr=addr, size=size,
            completion=completion if completion is not None else time,
        )

    def push(self, time, completion, buffer=0):
        return self.emit(
            time, "log_push", -1, buffer=buffer, addr=LOG_BASE,
            completion=completion, stall=0.0, occupancy=1,
        )

    def check(self):
        return PersistOrderChecker.check_events(self.events)


def fired(report):
    return set(report.rules_fired())


# ----------------------------------------------------------------------
# steal-order
# ----------------------------------------------------------------------
class TestStealOrder:
    def test_early_writeback_without_durable_log_fires(self):
        # The stolen line reaches NVRAM at 100, the log record only at 500.
        t = Trace()
        t.begin(1).place(5, release=500.0).store(10)
        t.nvram(50, ADDR, completion=100.0)
        assert fired(t.check()) == {"steal-order"}

    def test_durable_log_before_writeback_is_clean(self):
        t = Trace()
        t.begin(1).place(5, release=50.0).store(10)
        t.nvram(60, ADDR, completion=100.0)
        assert t.check().clean

    def test_post_commit_writeback_is_clean(self):
        # After the commit record is durable, write-backs need no cover.
        t = Trace()
        t.begin(1).place(5, release=50.0).store(10)
        t.place(20, kind="COMMIT", slot=1, release=80.0)
        t.commit(20)
        t.nvram(90, ADDR, completion=200.0)
        assert t.check().clean


# ----------------------------------------------------------------------
# undo-missing
# ----------------------------------------------------------------------
class TestUndoMissing:
    def test_store_without_record_fires(self):
        t = Trace()
        t.begin(1).store(10)
        report = t.check()
        assert "undo-missing" in fired(report)

    def test_record_without_undo_fires(self):
        t = Trace(policy="hw-rlog")
        t.begin(1).place(5, undo="", release=8.0).store(10)
        assert "undo-missing" in fired(t.check())

    def test_undo_record_before_store_is_clean(self):
        t = Trace()
        t.begin(1).place(5, release=8.0).store(10)
        t.place(20, kind="COMMIT", slot=1, release=30.0).commit(20)
        t.nvram(25, ADDR, completion=28.0)
        assert t.check().clean

    def test_redo_policy_defers_stores_and_is_exempt(self):
        # Software redo logging never stores in place inside the txn;
        # its post-commit flush must not trip the rule either.
        t = Trace(policy="redo-clwb")
        t.begin(1).place(5, undo="", release=8.0)
        t.place(20, kind="COMMIT", slot=1, release=30.0).commit(20)
        t.store(35)  # deferred in-place store, after commit
        t.nvram(40, ADDR, completion=45.0)
        assert t.check().clean


# ----------------------------------------------------------------------
# redo-missing
# ----------------------------------------------------------------------
class TestRedoMissing:
    def test_undo_only_record_with_no_writeback_fires(self):
        t = Trace()
        t.begin(1).place(5, redo="", release=8.0).store(10)
        t.place(20, kind="COMMIT", slot=1, release=30.0).commit(20)
        assert fired(t.check()) == {"redo-missing"}

    def test_undo_only_record_with_late_writeback_fires(self):
        t = Trace()
        t.begin(1).place(5, redo="", release=8.0).store(10)
        t.place(20, kind="COMMIT", slot=1, release=30.0).commit(20)
        t.nvram(35, ADDR, completion=500.0)  # durable long after commit
        assert fired(t.check()) == {"redo-missing"}

    def test_redo_value_is_clean(self):
        t = Trace()
        t.begin(1).place(5, release=8.0).store(10)
        t.place(20, kind="COMMIT", slot=1, release=30.0).commit(20)
        assert t.check().clean

    def test_undo_only_with_data_durable_before_commit_is_clean(self):
        # Undo-only logging is fine when the data itself is forced back
        # before the commit record (the paper's undo+clwb baseline).
        t = Trace()
        t.begin(1).place(5, redo="", release=8.0).store(10)
        t.nvram(12, ADDR, completion=15.0)
        t.place(20, kind="COMMIT", slot=1, release=30.0).commit(20)
        assert t.check().clean


# ----------------------------------------------------------------------
# commit-order
# ----------------------------------------------------------------------
class TestCommitOrder:
    def test_data_record_durable_after_commit_record_fires(self):
        t = Trace()
        t.begin(1).place(5, release=100.0).store(10)
        t.place(20, kind="COMMIT", slot=1, release=30.0).commit(20)
        report = t.check()
        assert "commit-order" in fired(report)

    def test_data_record_never_durable_fires(self):
        t = Trace()
        t.begin(1).place(5).store(10)  # release=None, no log nvram_write
        t.place(20, kind="COMMIT", slot=1, release=30.0).commit(20)
        assert "commit-order" in fired(t.check())

    def test_data_before_commit_is_clean(self):
        t = Trace()
        t.begin(1).place(5, release=8.0).store(10)
        t.place(20, kind="COMMIT", slot=1, release=30.0).commit(20)
        assert t.check().clean


# ----------------------------------------------------------------------
# commit-durability
# ----------------------------------------------------------------------
class TestCommitDurability:
    def test_reported_before_record_durable_fires(self):
        t = Trace()
        t.begin(1).place(5, release=8.0).store(10)
        t.place(20, kind="COMMIT", slot=1, release=200.0).commit(20)
        t.reported(21, durable=50.0)  # claims durable 150 cycles early
        assert fired(t.check()) == {"commit-durability"}

    def test_reported_but_record_never_durable_fires(self):
        t = Trace()
        t.begin(1).place(5, release=8.0).store(10)
        t.place(20, kind="COMMIT", slot=1).commit(20)  # release=None
        t.reported(21, durable=50.0)
        report = t.check()
        assert "commit-durability" in fired(report)

    def test_honest_report_is_clean(self):
        t = Trace()
        t.begin(1).place(5, release=8.0).store(10)
        t.place(20, kind="COMMIT", slot=1, release=200.0).commit(20)
        t.reported(21, durable=200.0)
        assert t.check().clean

    def test_crashed_stream_forgives_missing_durability(self):
        # A crash cuts the stream before the drain; that is not a lie.
        t = Trace()
        t.begin(1).place(5, release=8.0).store(10)
        t.place(20, kind="COMMIT", slot=1).commit(20)
        t.reported(21, durable=50.0)
        t.emit(22, "crash")
        assert "commit-durability" not in fired(t.check())


# ----------------------------------------------------------------------
# wrap-overwrite
# ----------------------------------------------------------------------
class TestWrapOverwrite:
    def test_dirty_displacement_without_force_fires(self):
        t = Trace()
        t.begin(1)
        t.place(5, release=8.0, displaced_line=ADDR, displaced_dirty=True)
        assert "wrap-overwrite" in fired(t.check())

    def test_force_completing_after_record_durability_fires(self):
        t = Trace()
        t.begin(1)
        t.place(
            5, release=8.0, force_completion=300.0,
            displaced_line=ADDR, displaced_dirty=True,
        )
        assert "wrap-overwrite" in fired(t.check())

    def test_force_before_record_durability_is_clean(self):
        t = Trace()
        t.begin(1)
        t.place(
            5, release=100.0, force_completion=50.0,
            displaced_line=ADDR, displaced_dirty=True,
        )
        t.store(10)
        t.place(20, kind="COMMIT", slot=1, release=120.0).commit(20)
        assert t.check().clean

    def test_software_record_resolves_durability_via_log_write(self):
        # release=None: durability arrives with the log region nvram_write.
        t = Trace()
        t.begin(1)
        t.place(
            5, force_completion=300.0,
            displaced_line=ADDR, displaced_dirty=True,
        )
        t.nvram(10, LOG_BASE, size=ENTRY, completion=100.0)  # durable at 100 < 300
        assert "wrap-overwrite" in fired(t.check())


# ----------------------------------------------------------------------
# torn-parity
# ----------------------------------------------------------------------
class TestTornParity:
    def test_unflipped_torn_bit_on_reused_slot_fires(self):
        t = Trace()
        t.begin(1)
        t.place(5, slot=0, torn=1, release=8.0)
        t.place(6, slot=0, torn=1, release=9.0)  # same slot, same parity
        assert "torn-parity" in fired(t.check())

    def test_flipped_torn_bit_is_clean(self):
        t = Trace()
        t.begin(1).place(5, slot=0, torn=1, release=8.0)
        t.place(6, slot=0, torn=0, release=9.0).store(10)
        t.place(20, kind="COMMIT", slot=1, torn=1, release=30.0).commit(20)
        assert t.check().clean


# ----------------------------------------------------------------------
# fifo-order
# ----------------------------------------------------------------------
class TestFifoOrder:
    def test_completion_going_backwards_fires(self):
        t = Trace()
        t.push(1, completion=100.0)
        t.push(2, completion=50.0)
        assert fired(t.check()) == {"fifo-order"}

    def test_monotone_completions_are_clean(self):
        t = Trace()
        t.push(1, completion=50.0)
        t.push(2, completion=100.0)
        assert t.check().clean

    def test_buffers_are_independent(self):
        # Per-core buffers drain independently; no cross-buffer ordering.
        t = Trace()
        t.push(1, completion=100.0, buffer=0)
        t.push(2, completion=50.0, buffer=1)
        assert t.check().clean


# ----------------------------------------------------------------------
# unlogged-mutation
# ----------------------------------------------------------------------
class TestUnloggedMutation:
    def test_store_outside_any_transaction_fires(self):
        t = Trace()
        t.store(10)
        assert fired(t.check()) == {"unlogged-mutation"}

    def test_store_inside_transaction_does_not_fire_it(self):
        t = Trace()
        t.begin(1).place(5, release=8.0).store(10)
        t.place(20, kind="COMMIT", slot=1, release=30.0).commit(20)
        assert t.check().clean

    def test_redo_flush_outside_logged_set_fires(self):
        # redo-clwb may flush deferred stores post-commit, but only to
        # words its just-committed transaction actually logged.
        t = Trace(policy="redo-clwb")
        t.begin(1).place(5, undo="", release=8.0)
        t.place(20, kind="COMMIT", slot=1, release=30.0).commit(20)
        t.store(35, addr=ADDR + 0x100)  # never logged
        assert "unlogged-mutation" in fired(t.check())

    def test_non_heap_store_is_ignored(self):
        t = Trace()
        t.store(10, addr=0x99)  # outside the persistent heap
        assert t.check().clean


# ----------------------------------------------------------------------
# switch-epoch-clean
# ----------------------------------------------------------------------
class TestSwitchEpochClean:
    OLD, NEW = "hw+undo+redo+nowb", "hw+undo+redo+clwb"

    def _switch(self, t, time):
        return t.emit(
            time, "design_switch", -1,
            old=self.OLD, new=self.NEW, barrier_cycles=0.0, truncated=False,
        )

    def test_switch_with_open_transaction_fires(self):
        t = Trace()
        t.begin(1).place(5, release=8.0).store(10)
        self._switch(t, 15)  # barrier forged mid-transaction
        t.place(20, kind="COMMIT", slot=1, release=30.0).commit(20)
        t.nvram(40, ADDR, completion=50.0)
        assert "switch-epoch-clean" in fired(t.check())

    def test_switch_with_undrained_record_fires(self):
        t = Trace()
        t.begin(1).place(5, release=None).store(10)  # never drains
        t.place(20, kind="COMMIT", slot=1, release=30.0).commit(20)
        t.nvram(40, ADDR, completion=50.0)
        self._switch(t, 60)
        report = t.check()
        assert "switch-epoch-clean" in fired(report)

    def test_switch_with_dirty_logged_line_fires(self):
        t = Trace()
        t.begin(1).place(5, release=8.0).store(10)
        t.place(20, kind="COMMIT", slot=1, release=30.0).commit(20)
        self._switch(t, 60)  # the stored line never reached NVRAM
        assert "switch-epoch-clean" in fired(t.check())

    def test_quiescent_switch_is_clean(self):
        t = Trace()
        t.begin(1).place(5, release=8.0).store(10)
        t.place(20, kind="COMMIT", slot=1, release=30.0).commit(20)
        t.nvram(40, ADDR, completion=50.0)
        self._switch(t, 60)
        assert t.check().clean


# ----------------------------------------------------------------------
# Replication-ordering rules (the distributed analogue, repro.dist)
# ----------------------------------------------------------------------
class ReplTrace:
    """Synthetic shipping-timeline event stream for the dist checker."""

    def __init__(self, replicas=(1, 2)):
        self.events = [
            TraceEvent(0.0, "meta", -1, {"dist": True, "replicas": list(replicas)})
        ]

    def add(self, time, kind, **detail):
        self.events.append(TraceEvent(time, kind, -1, detail))
        return self

    def check(self):
        from repro.sanitizer.replication import ReplicationOrderChecker

        checker = ReplicationOrderChecker()
        checker.consume(self.events)
        return checker.finish()


class TestReplAckDurable:
    def _base(self):
        t = ReplTrace(replicas=(1,))
        t.add(10.0, "ship", replica=1, batch=0, start_seq=0, n=2)
        t.add(20.0, "repl_append", replica=1, seq=0)
        t.add(30.0, "repl_append", replica=1, seq=1)
        return t

    def test_ack_after_durable_is_clean(self):
        t = self._base()
        t.add(40.0, "repl_ack", replica=1, batch=0, sent=35.0, start_seq=0, n=2)
        assert t.check().clean

    def test_ack_before_durable_fires(self):
        t = self._base()
        # Sent at 25: record seq 1 only became durable at 30.
        t.add(30.5, "repl_ack", replica=1, batch=0, sent=25.0, start_seq=0, n=2)
        report = t.check()
        assert report.by_rule().get("repl-ack-durable") == 1

    def test_torn_record_must_never_be_acked(self):
        t = ReplTrace(replicas=(1,))
        t.add(10.0, "ship", replica=1, batch=0, start_seq=0, n=1)
        t.add(20.0, "repl_append", replica=1, seq=0, torn=True)
        t.add(40.0, "repl_ack", replica=1, batch=0, sent=35.0, start_seq=0, n=1)
        report = t.check()
        assert "repl-ack-durable" in report.rules_fired()


class TestReplCommitQuorum:
    def _acked(self, t, replica, when):
        t.add(10.0, "ship", replica=replica, batch=0, start_seq=0, n=1)
        t.add(when - 20.0, "repl_append", replica=replica, seq=0)
        t.add(when, "repl_ack", replica=replica, batch=0, sent=when - 10.0,
              start_seq=0, n=1)

    def test_commit_after_full_quorum_is_clean(self):
        t = ReplTrace(replicas=(1, 2))
        self._acked(t, 1, 50.0)
        self._acked(t, 2, 60.0)
        t.add(60.0, "dist_commit", batch=0, tid=0, ordinal=0, txid=7, seq=0)
        assert t.check().clean

    def test_commit_before_last_ack_fires(self):
        t = ReplTrace(replicas=(1, 2))
        self._acked(t, 1, 50.0)
        self._acked(t, 2, 60.0)
        t.add(55.0, "dist_commit", batch=0, tid=0, ordinal=0, txid=7, seq=0)
        report = t.check()
        assert report.by_rule().get("repl-commit-quorum") == 1

    def test_commit_with_a_missing_replica_fires(self):
        t = ReplTrace(replicas=(1, 2))
        self._acked(t, 1, 50.0)
        t.add(50.0, "dist_commit", batch=0, tid=0, ordinal=0, txid=7, seq=0)
        report = t.check()
        assert "repl-commit-quorum" in report.rules_fired()


class TestReplSeqOrder:
    def test_in_order_appends_are_clean(self):
        t = ReplTrace(replicas=(1,))
        for seq in range(3):
            t.add(10.0 * (seq + 1), "repl_append", replica=1, seq=seq)
        assert t.check().clean

    def test_gap_fires(self):
        t = ReplTrace(replicas=(1,))
        t.add(10.0, "repl_append", replica=1, seq=0)
        t.add(20.0, "repl_append", replica=1, seq=2)
        report = t.check()
        assert report.by_rule().get("repl-seq-order") == 1

    def test_duplicate_application_fires(self):
        t = ReplTrace(replicas=(1,))
        t.add(10.0, "repl_append", replica=1, seq=0)
        t.add(20.0, "repl_append", replica=1, seq=1)
        t.add(30.0, "repl_append", replica=1, seq=0)
        report = t.check()
        assert "repl-seq-order" in report.rules_fired()


# ----------------------------------------------------------------------
# Cross-cutting
# ----------------------------------------------------------------------
class TestCheckerPlumbing:
    def test_non_pers_disables_all_rules(self):
        t = Trace(policy="non-pers")
        t.store(10)  # would be unlogged-mutation under any logging policy
        report = t.check()
        assert report.clean
        assert report.rules_checked == ()

    def test_every_rule_is_exercised_by_this_file(self):
        # The pairs above cover the full registry; a new rule without a
        # test pair should fail here.
        exercised = {
            "steal-order", "undo-missing", "redo-missing", "commit-order",
            "commit-durability", "wrap-overwrite", "torn-parity",
            "fifo-order", "unlogged-mutation", "switch-epoch-clean",
            "repl-ack-durable", "repl-commit-quorum", "repl-seq-order",
        }
        assert exercised == set(RULES)

    def test_report_counts_and_rendering(self):
        t = Trace()
        t.store(10)
        report = t.check()
        assert report.events_processed == len(t.events)
        assert not report.clean
        assert report.by_rule()["unlogged-mutation"] == 1
        assert "unlogged-mutation" in report.render()
        payload = report.to_dict()
        assert payload["clean"] is False
        assert payload["diagnostics"][0]["rule"] == "unlogged-mutation"
