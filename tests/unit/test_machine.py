"""Unit tests for repro.sim.machine (assembly and crash semantics)."""

import pytest

from repro import Machine, Policy
from repro.errors import SimulationError
from repro.sim.microops import Compute, Store
from tests.conftest import tiny_system


class TestAssembly:
    def test_hw_policy_wires_hwl(self):
        m = Machine(tiny_system(), Policy.FWB)
        assert m.hwl is not None and m.log_buffer is not None
        assert m.swlog is None
        assert m.fwb is not None

    def test_hwl_policy_has_no_fwb(self):
        m = Machine(tiny_system(), Policy.HWL)
        assert m.hwl is not None and m.fwb is None

    def test_sw_policy_wires_softlog(self):
        m = Machine(tiny_system(), Policy.UNDO_CLWB)
        assert m.swlog is not None and m.hwl is None

    def test_sw_safe_policy_installs_order_hook(self):
        m = Machine(tiny_system(), Policy.UNDO_CLWB)
        assert m.hierarchy.writeback_release_hook is not None

    def test_unsafe_sw_policy_has_no_hook(self):
        m = Machine(tiny_system(), Policy.UNSAFE_BASE)
        assert m.hierarchy.writeback_release_hook is None

    def test_non_pers_has_nothing(self):
        m = Machine(tiny_system(), Policy.NON_PERS)
        assert m.hwl is None and m.swlog is None and m.fwb is None

    def test_log_region_at_top_of_nvram(self):
        m = Machine(tiny_system(), Policy.FWB)
        assert m.log_base + m.config.logging.log_bytes == m.config.nvram.size_bytes
        assert m.heap_base < m.heap_limit == m.log_base

    def test_regions_registered(self):
        m = Machine(tiny_system(), Policy.FWB)
        assert set(m.nvram.region_write_bytes) == {"heap", "log"}


class TestExecution:
    def test_finalize_aggregates(self):
        m = Machine(tiny_system(), Policy.NON_PERS)
        m.execute(0, Compute(10))
        m.execute(1, Compute(20))
        stats = m.finalize()
        assert stats.instructions == 30
        assert stats.cycles == m.cores[1].time
        assert stats.per_core_instructions == {0: 10, 1: 20}

    def test_core_time(self):
        m = Machine(tiny_system(), Policy.NON_PERS)
        m.execute(0, Compute(10))
        assert m.core_time(0) > 0
        assert m.core_time(1) == 0


class TestCrash:
    def test_crash_drops_caches(self):
        m = Machine(tiny_system(), Policy.FWB)
        m.execute(0, Store(0x2000, b"V" * 8, persistent=False))
        m.crash()
        assert m.hierarchy.l1s[0].occupancy == 0

    def test_crash_reverts_late_writes(self):
        m = Machine(tiny_system(), Policy.NON_PERS)
        ticket = m.memctrl.write(0x2000, b"LATE!!!!", 100.0)
        m.crash(at_time=50.0)
        assert m.nvram.peek(0x2000, 8) == bytes(8)
        assert ticket.completion > 50.0

    def test_crash_keeps_durable_writes(self):
        m = Machine(tiny_system(), Policy.NON_PERS)
        ticket = m.memctrl.write(0x2000, b"DURABLE!", 0.0)
        m.crash(at_time=ticket.completion)
        assert m.nvram.peek(0x2000, 8) == b"DURABLE!"

    def test_no_execution_after_crash(self):
        m = Machine(tiny_system(), Policy.NON_PERS)
        m.crash()
        with pytest.raises(SimulationError):
            m.execute(0, Compute(1))

    def test_crash_defaults_to_latest_core_time(self):
        m = Machine(tiny_system(), Policy.NON_PERS)
        m.execute(0, Compute(100))
        crash_time = m.crash()
        assert crash_time == pytest.approx(m.cores[0].time)
