"""Unit tests for repro.faults (plans, crash points, enumeration)."""

import pytest

from repro.core.logrecord import DecodeStatus, LogRecord
from repro.errors import FaultInjectionError, RecoveryInterrupted, SimulatedCrash
from repro.faults import (
    BitFlip,
    CrashPoint,
    EventKind,
    FaultInjector,
    FaultMonitor,
    GhostRecord,
    StuckAt,
    TornWrite,
    enumerate_points,
    sample_indices,
)
from repro.sim.config import NVDimmConfig
from repro.sim.nvram import NVRAM


class TestTornWrite:
    def test_keeps_word_prefix(self):
        injector = FaultInjector([TornWrite(base=0, end=256, keep_words=1)])
        old = b"O" * 32
        new = b"N" * 32
        assert injector.on_revert(64, old, new) == b"N" * 8 + b"O" * 24
        assert injector.tears_applied == 1

    def test_max_tears_bound(self):
        injector = FaultInjector([TornWrite(base=0, end=256, max_tears=1)])
        injector.on_revert(0, b"O" * 16, b"N" * 16)
        # Budget exhausted: the second in-flight write reverts fully.
        assert injector.on_revert(64, b"O" * 16, b"N" * 16) == b"O" * 16
        assert injector.tears_applied == 1

    def test_out_of_range_write_reverts_fully(self):
        injector = FaultInjector([TornWrite(base=0, end=64)])
        assert injector.on_revert(128, b"O" * 16, b"N" * 16) == b"O" * 16
        assert injector.tears_applied == 0

    def test_full_keep_is_not_a_tear(self):
        injector = FaultInjector([TornWrite(base=0, end=64, keep_words=8)])
        assert injector.on_revert(0, b"O" * 16, b"N" * 16) == b"O" * 16
        assert injector.tears_applied == 0

    def test_validation(self):
        with pytest.raises(FaultInjectionError):
            FaultInjector([TornWrite(base=64, end=64)])
        with pytest.raises(FaultInjectionError):
            FaultInjector([TornWrite(base=0, end=64, max_tears=0)])


class TestStaticFaults:
    def _nvram(self):
        return NVRAM(NVDimmConfig(size_bytes=64 * 1024))

    def test_stuck_at_filters_writes(self):
        injector = FaultInjector([StuckAt(addr=0x100, bit=0, value=1)])
        filtered = injector.filter_write(0x100, bytes(8))
        assert filtered[0] == 1
        assert injector.writes_filtered == 1

    def test_bit_flip_applied_once(self):
        nvram = self._nvram()
        injector = FaultInjector([BitFlip(addr=0x200, bit=3)])
        assert injector.corrupt_image(nvram) == 1
        assert nvram.peek(0x200, 1)[0] == 1 << 3

    def test_ghost_record_fails_checksum(self):
        payload = GhostRecord(slot_addr=0x1000, entry_size=64).payload()
        record, status = LogRecord.classify(payload, verify_checksum=True)
        assert record is None
        assert status is DecodeStatus.CHECKSUM
        # The bare (paper) decoder is fooled — that is the point of the
        # per-record checksum.
        record, status = LogRecord.classify(payload, verify_checksum=False)
        assert record is not None

    def test_ghost_written_into_image(self):
        nvram = self._nvram()
        ghost = GhostRecord(slot_addr=0x1000, entry_size=64, seed=3)
        injector = FaultInjector([ghost])
        injector.corrupt_image(nvram)
        assert nvram.peek(0x1000, 64) == ghost.payload()

    def test_validation(self):
        with pytest.raises(FaultInjectionError):
            FaultInjector([StuckAt(addr=0, bit=9, value=1)])
        with pytest.raises(FaultInjectionError):
            FaultInjector([GhostRecord(slot_addr=0, entry_size=8)])


class _FakeStats:
    log_records = 0
    fwb_scans = 0
    log_wrap_forced_writebacks = 0


class TestFaultMonitor:
    def test_profiles_event_counts(self):
        monitor = FaultMonitor()
        stats = _FakeStats()
        for i in range(5):
            stats.log_records = i  # one drain per op after the first
            monitor.after_op(float(i), stats)
        assert monitor.counts[EventKind.RETIRE] == 5
        assert monitor.counts[EventKind.LOG_DRAIN] == 4

    def test_trigger_raises_at_exact_index(self):
        monitor = FaultMonitor(CrashPoint(EventKind.RETIRE, 2))
        stats = _FakeStats()
        monitor.after_op(0.0, stats)
        monitor.after_op(1.0, stats)
        with pytest.raises(SimulatedCrash) as excinfo:
            monitor.after_op(2.5, stats)
        assert excinfo.value.at_time == 2.5
        assert monitor.fired

    def test_trigger_fires_once(self):
        monitor = FaultMonitor(CrashPoint(EventKind.RETIRE, 0))
        stats = _FakeStats()
        with pytest.raises(SimulatedCrash):
            monitor.after_op(0.0, stats)
        monitor.after_op(1.0, stats)  # must not raise again

    def test_recovery_trigger(self):
        monitor = FaultMonitor(CrashPoint(EventKind.RECOVERY, 1))
        monitor.recovery_step()
        with pytest.raises(RecoveryInterrupted):
            monitor.recovery_step()


class TestSampling:
    def test_budget_larger_than_total(self):
        assert sample_indices(3, 10) == [0, 1, 2]

    def test_spread_includes_first_and_last(self):
        picked = sample_indices(1000, 10)
        assert len(picked) == 10
        assert picked[0] == 0
        assert picked[-1] == 999

    def test_deterministic(self):
        assert sample_indices(777, 13) == sample_indices(777, 13)

    def test_empty(self):
        assert sample_indices(0, 5) == []
        assert sample_indices(5, 0) == []


class TestEnumeratePoints:
    TOTALS = {
        EventKind.RETIRE: 1000,
        EventKind.LOG_DRAIN: 200,
        EventKind.FWB_SCAN: 40,
        EventKind.WRAP_FORCE: 10,
        EventKind.RECOVERY: 0,
    }

    def test_deterministic_and_bounded(self):
        first = enumerate_points(self.TOTALS, recovery_steps=50, budget=60)
        second = enumerate_points(self.TOTALS, recovery_steps=50, budget=60)
        assert first == second
        assert 0 < len(first) <= 66  # budget with small rounding slack

    def test_mixes_kinds_and_faults(self):
        points = enumerate_points(self.TOTALS, recovery_steps=50, budget=60)
        kinds = {point.kind for point in points}
        faults = {point.fault for point in points}
        assert EventKind.RETIRE in kinds
        assert EventKind.RECOVERY in kinds
        assert "torn" in faults and "ghost" in faults and "none" in faults

    def test_missing_streams_densify_retires(self):
        sparse = dict(self.TOTALS)
        sparse[EventKind.FWB_SCAN] = 0
        sparse[EventKind.WRAP_FORCE] = 0
        points = enumerate_points(sparse, recovery_steps=0, budget=40)
        assert all(
            point.kind in (EventKind.RETIRE, EventKind.LOG_DRAIN)
            for point in points
        )
        assert len(points) >= 30


class TestResolvePolicies:
    def test_guaranteed_keyword(self):
        from repro.faults import GUARANTEED_POLICIES, resolve_policies

        assert resolve_policies("guaranteed") == GUARANTEED_POLICIES

    def test_comma_list_of_names(self):
        from repro.faults import resolve_policies

        designs = resolve_policies("fwb,hwl")
        assert [d.name for d in designs] == ["fwb", "hwl"]

    def test_comma_list_deduplicates(self):
        from repro.faults import resolve_policies

        assert len(resolve_policies("fwb,fwb, fwb")) == 1

    def test_mechanism_string_mixes_with_names(self):
        from repro.faults import resolve_policies

        designs = resolve_policies("fwb,hw+undo+redo+clwb+instant")
        assert len(designs) == 2
        assert not designs[1].persistence_guaranteed

    def test_empty_spec_is_an_error(self):
        from repro.errors import WorkloadError
        from repro.faults import resolve_policies

        with pytest.raises(WorkloadError, match="names no designs"):
            resolve_policies(" , ,")


class TestInstantVariants:
    def test_instant_grid_loses_every_guarantee(self):
        from repro.core.design import CommitProtocol
        from repro.faults import GUARANTEED_POLICIES, instant_variants, resolve_policies

        variants = resolve_policies("instant")
        assert variants == instant_variants()
        assert len(variants) == len(GUARANTEED_POLICIES)
        for spec in variants:
            assert spec.commit is CommitProtocol.INSTANT
            assert not spec.persistence_guaranteed

    def test_variants_keep_logging_mechanisms(self):
        from repro.faults import GUARANTEED_POLICIES, instant_variants

        for base, variant in zip(GUARANTEED_POLICIES, instant_variants()):
            assert variant.log_backend is base.log_backend
            assert variant.log_content is base.log_content
            assert variant.writeback is base.writeback
