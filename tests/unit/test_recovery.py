"""Unit tests for repro.core.recovery (log replay)."""

import pytest

from repro.core.growlog import DIRECTORY_BYTES, GrowableCircularLog, RegionDirectory
from repro.core.logrecord import LogRecord, RecordKind
from repro.core.nvlog import CircularLog
from repro.core.recovery import RecoveryManager, RecoveryReport
from repro.sim.config import NVDimmConfig
from repro.sim.nvram import NVRAM


@pytest.fixture
def env():
    nvram = NVRAM(NVDimmConfig(size_bytes=1024 * 1024))
    log = CircularLog(base=0x80000, num_entries=8, entry_size=64)
    return nvram, log, RecoveryManager(nvram, log)


def append(nvram, log, record):
    placed = log.place(record)
    nvram.poke(placed.addr, placed.payload)


def begin(nvram, log, txid):
    append(nvram, log, LogRecord(RecordKind.BEGIN, txid, 0))


def data(nvram, log, txid, addr, old, new):
    append(nvram, log, LogRecord(RecordKind.DATA, txid, 0, addr, old, new))


def commit(nvram, log, txid):
    append(nvram, log, LogRecord(RecordKind.COMMIT, txid, 0))


class TestWindowScan:
    def test_empty_log(self, env):
        _nvram, _log, manager = env
        assert manager.scan_window() == []

    def test_prefix_before_wrap(self, env):
        nvram, log, manager = env
        begin(nvram, log, 1)
        data(nvram, log, 1, 0x100, b"A" * 8, b"B" * 8)
        commit(nvram, log, 1)
        window = manager.scan_window()
        assert [r.kind for r in window] == [
            RecordKind.BEGIN,
            RecordKind.DATA,
            RecordKind.COMMIT,
        ]

    def test_wrapped_window_in_history_order(self, env):
        nvram, log, manager = env
        for i in range(10):  # wraps an 8-entry ring
            data(nvram, log, 1, 0x100 + i * 8, b"A" * 8, bytes([i]) * 8)
        window = manager.scan_window()
        assert len(window) == 8
        values = [r.redo[0] for r in window]
        assert values == [2, 3, 4, 5, 6, 7, 8, 9]

    def test_exact_wrap_boundary(self, env):
        nvram, log, manager = env
        for i in range(8):
            data(nvram, log, 1, 0x100 + i * 8, b"A" * 8, bytes([i]) * 8)
        window = manager.scan_window()
        assert [r.redo[0] for r in window] == list(range(8))


class TestReplay:
    def test_committed_transaction_redone(self, env):
        nvram, log, manager = env
        begin(nvram, log, 1)
        data(nvram, log, 1, 0x100, b"O" * 8, b"N" * 8)
        commit(nvram, log, 1)
        report = manager.recover()
        assert report.committed_instances == 1
        assert report.redo_writes == 1
        assert nvram.peek(0x100, 8) == b"N" * 8

    def test_uncommitted_transaction_undone(self, env):
        nvram, log, manager = env
        nvram.poke(0x100, b"N" * 8)  # the store stole its way to NVRAM
        begin(nvram, log, 1)
        data(nvram, log, 1, 0x100, b"O" * 8, b"N" * 8)
        report = manager.recover()
        assert report.uncommitted_instances == 1
        assert report.undo_writes == 1
        assert nvram.peek(0x100, 8) == b"O" * 8

    def test_multi_write_undo_in_reverse(self, env):
        nvram, log, manager = env
        begin(nvram, log, 1)
        data(nvram, log, 1, 0x100, b"0" * 8, b"1" * 8)
        data(nvram, log, 1, 0x100, b"1" * 8, b"2" * 8)
        nvram.poke(0x100, b"2" * 8)
        manager.recover()
        assert nvram.peek(0x100, 8) == b"0" * 8

    def test_redo_applied_in_order(self, env):
        nvram, log, manager = env
        begin(nvram, log, 1)
        data(nvram, log, 1, 0x100, b"0" * 8, b"1" * 8)
        data(nvram, log, 1, 0x100, b"1" * 8, b"2" * 8)
        commit(nvram, log, 1)
        manager.recover()
        assert nvram.peek(0x100, 8) == b"2" * 8

    def test_mixed_transactions(self, env):
        nvram, log, manager = env
        begin(nvram, log, 1)
        data(nvram, log, 1, 0x100, b"A" * 8, b"B" * 8)
        commit(nvram, log, 1)
        begin(nvram, log, 2)
        data(nvram, log, 2, 0x200, b"C" * 8, b"D" * 8)
        nvram.poke(0x200, b"D" * 8)
        report = manager.recover()
        assert report.committed_instances == 1
        assert report.uncommitted_instances == 1
        assert nvram.peek(0x100, 8) == b"B" * 8
        assert nvram.peek(0x200, 8) == b"C" * 8

    def test_physical_txid_reuse(self, env):
        """Same txid committed twice: each instance handled separately."""
        nvram, log, manager = env
        begin(nvram, log, 5)
        data(nvram, log, 5, 0x100, b"0" * 8, b"1" * 8)
        commit(nvram, log, 5)
        begin(nvram, log, 5)
        data(nvram, log, 5, 0x100, b"1" * 8, b"2" * 8)
        report = manager.recover()
        assert report.committed_instances == 1
        assert report.uncommitted_instances == 1
        assert nvram.peek(0x100, 8) == b"1" * 8

    def test_orphan_data_with_commit_is_redone(self, env):
        """A txn whose BEGIN was overwritten but whose COMMIT survived."""
        nvram, log, manager = env
        data(nvram, log, 3, 0x100, b"X" * 8, b"Y" * 8)
        commit(nvram, log, 3)
        manager.recover()
        assert nvram.peek(0x100, 8) == b"Y" * 8

    def test_undo_only_records_skip_redo(self, env):
        nvram, log, manager = env
        nvram.poke(0x100, b"KEEPKEEP")
        begin(nvram, log, 1)
        data(nvram, log, 1, 0x100, b"O" * 8, b"")  # undo-only (sw undo)
        commit(nvram, log, 1)
        report = manager.recover()
        assert report.redo_writes == 0
        assert nvram.peek(0x100, 8) == b"KEEPKEEP"

    def test_log_reset_after_recovery(self, env):
        nvram, log, manager = env
        begin(nvram, log, 1)
        commit(nvram, log, 1)
        manager.recover()
        assert manager.scan_window() == []
        assert log.tail == 0 and not log.wrapped

    def test_recover_without_reset(self, env):
        nvram, log, manager = env
        begin(nvram, log, 1)
        commit(nvram, log, 1)
        manager.recover(reset_log=False)
        assert len(manager.scan_window()) == 2

    def test_report_counts(self, env):
        nvram, log, manager = env
        report = manager.recover()
        assert report.records_scanned == 8
        assert report.window_entries == 0
        assert report.total_writes == 0


def tear(nvram, log, slot, keep=8):
    """Destroy slot ``slot`` the way a torn in-flight write does: the
    first ``keep`` bytes of a new record (magic included) persist over
    whatever was there, so the entry checksums as damaged, not empty."""
    fragment = LogRecord(
        RecordKind.DATA, 0x3FF, 0, 0x7000, b"T" * 8, b"T" * 8
    ).encode(log.entry_size)[:keep]
    nvram.poke(log.entry_addr(slot), fragment)


class TestDamagedLog:
    def test_torn_tail_skipped_and_counted(self, env):
        nvram, log, manager = env
        begin(nvram, log, 1)
        data(nvram, log, 1, 0x100, b"O" * 8, b"N" * 8)
        commit(nvram, log, 1)
        tear(nvram, log, slot=3)  # the in-flight next record
        report = RecoveryReport()
        window = manager.scan_window(report)
        assert len(window) == 3
        assert report.torn_records_skipped == 1

    def test_mid_window_corruption_skipped(self, env):
        nvram, log, manager = env
        begin(nvram, log, 1)
        data(nvram, log, 1, 0x100, b"O" * 8, b"N" * 8)
        commit(nvram, log, 1)
        begin(nvram, log, 2)
        tear(nvram, log, slot=1)  # destroy the committed txn's DATA record
        report = manager.recover(reset_log=False)
        assert report.checksum_failures == 1
        assert report.committed_instances == 1
        assert report.damaged_records == 1

    def test_unchecked_recovery_replays_ghost(self, env):
        # The control experiment: without checksums a plausible ghost
        # entry decodes as a real record.
        from repro.faults import GhostRecord

        nvram, log, _manager = env
        begin(nvram, log, 1)
        commit(nvram, log, 1)
        ghost_slot = 2
        payload = GhostRecord(log.entry_addr(ghost_slot), log.entry_size, seed=1).payload()
        nvram.poke(log.entry_addr(ghost_slot), payload)
        checked = RecoveryManager(nvram, log, verify_checksums=True)
        report = RecoveryReport()
        assert len(checked.scan_window(report)) == 2
        assert report.checksum_failures + report.torn_records_skipped >= 1
        bare = RecoveryManager(nvram, log, verify_checksums=False)
        assert len(bare.scan_window()) == 3  # ghost replayed

    def test_resurrected_newer_pass_record_dropped(self, env):
        # A torn overwrite of an all-header record can keep a whole valid
        # header carrying the NEXT pass's torn bit.  FIFO drain order
        # says it cannot be durable while same-pass predecessors are
        # missing — the scan must drop it, not truncate the window.
        nvram, log, manager = env
        for i in range(8):  # fill pass 1 exactly (parity stays 1)
            data(nvram, log, 1, 0x100 + i * 8, b"A" * 8, bytes([i]) * 8)
        resurrected = LogRecord(RecordKind.COMMIT, 7, 0, torn=0)
        nvram.poke(log.entry_addr(3), resurrected.encode(log.entry_size))
        report = RecoveryReport()
        window = manager.scan_window(report)
        assert [r.redo[0] for r in window] == [0, 1, 2, 4, 5, 6, 7]
        assert report.torn_records_skipped == 1

    def test_lost_commit_inferred_from_same_thread_successor(self, env):
        # Destroying a COMMIT mid-window must not roll the transaction
        # back: a later record of the same thread proves it finished.
        nvram, log, manager = env
        begin(nvram, log, 1)
        data(nvram, log, 1, 0x100, b"O" * 8, b"N" * 8)
        commit(nvram, log, 1)
        begin(nvram, log, 2)
        nvram.poke(0x100, b"N" * 8)  # txn 1's data is durable
        tear(nvram, log, slot=2)  # destroy txn 1's COMMIT
        report = manager.recover()
        assert report.commits_inferred == 1
        assert report.committed_instances == 1
        assert nvram.peek(0x100, 8) == b"N" * 8  # not rolled back

    def test_in_flight_transaction_still_undone(self, env):
        # The inference must not save a transaction that truly was
        # in flight: no same-thread successor, so it is undone.
        nvram, log, manager = env
        begin(nvram, log, 1)
        data(nvram, log, 1, 0x100, b"O" * 8, b"N" * 8)
        nvram.poke(0x100, b"N" * 8)
        report = manager.recover()
        assert report.commits_inferred == 0
        assert report.uncommitted_instances == 1
        assert nvram.peek(0x100, 8) == b"O" * 8

    def test_double_recovery_idempotent(self, env):
        nvram, log, manager = env
        begin(nvram, log, 1)
        data(nvram, log, 1, 0x100, b"O" * 8, b"N" * 8)
        commit(nvram, log, 1)
        begin(nvram, log, 2)
        data(nvram, log, 2, 0x200, b"P" * 8, b"Q" * 8)
        nvram.poke(0x200, b"Q" * 8)
        manager.recover()
        image = bytes(nvram.image)
        second = RecoveryManager(nvram, log).recover()
        assert bytes(nvram.image) == image
        assert second.window_entries == 0


class TestGrownLogRecovery:
    """Recovery across grown regions, including a torn active tail."""

    ENTRIES = 8
    ENTRY_SIZE = 64

    def _grown_env(self):
        nvram = NVRAM(NVDimmConfig(size_bytes=1024 * 1024))
        directory_addr = 0x70000
        bases = iter((0x90000, 0xA0000))
        active = {"token": 1}
        log = GrowableCircularLog(
            base=0x80000,
            num_entries=self.ENTRIES,
            entry_size=self.ENTRY_SIZE,
            line_size=64,
            region_allocator=lambda size: next(bases),
            activity_token=lambda txid: active["token"],
            directory=RegionDirectory(nvram, directory_addr),
        )
        return nvram, log, directory_addr

    def _fill(self, nvram, log, count, txid=1):
        for i in range(count):
            record = LogRecord(
                RecordKind.DATA, txid, 0, 0x100 + i * 8, b"A" * 8, bytes([i]) * 8
            )
            placed = log.place(record)
            nvram.poke(placed.addr, placed.payload)

    def test_window_spans_frozen_and_active_regions(self):
        nvram, log, _directory = self._grown_env()
        # Fill the ring, then wrap onto a slot whose transaction is still
        # active: the log grows instead of overwriting.
        self._fill(nvram, log, self.ENTRIES + 3)
        assert log.total_regions == 2
        manager = RecoveryManager(nvram, log)
        window = manager.scan_window()
        assert [r.redo[0] for r in window] == list(range(self.ENTRIES + 3))

    def test_torn_active_tail_after_grow(self):
        nvram, log, directory_addr = self._grown_env()
        self._fill(nvram, log, self.ENTRIES + 3)
        views = log.region_views()
        tear(nvram, views[-1], 2)  # torn in-flight write of the newest record
        manager = RecoveryManager.from_directory(nvram, directory_addr)
        report = RecoveryReport()
        window = manager.scan_window(report)
        assert [r.redo[0] for r in window] == list(range(self.ENTRIES + 2))
        assert report.torn_records_skipped == 1

    def test_reset_clears_every_region_view(self):
        # Satellite: _reset_log must reset frozen views too, so nothing
        # replays from a stale region after recovery.
        nvram, log, directory_addr = self._grown_env()
        self._fill(nvram, log, self.ENTRIES + 3)
        manager = RecoveryManager.from_directory(nvram, directory_addr)
        manager.recover()
        for view in manager._views():
            assert view.tail == 0 and view.head == 0 and not view.wrapped
        assert manager.scan_window() == []
        # The original (still-live) log object is reset as well.
        fresh = RecoveryManager(nvram, log)
        assert fresh.scan_window() == []
