"""Unit tests for repro.core.recovery (log replay)."""

import pytest

from repro.core.logrecord import LogRecord, RecordKind
from repro.core.nvlog import CircularLog
from repro.core.recovery import RecoveryManager
from repro.sim.config import NVDimmConfig
from repro.sim.nvram import NVRAM


@pytest.fixture
def env():
    nvram = NVRAM(NVDimmConfig(size_bytes=1024 * 1024))
    log = CircularLog(base=0x80000, num_entries=8, entry_size=64)
    return nvram, log, RecoveryManager(nvram, log)


def append(nvram, log, record):
    placed = log.place(record)
    nvram.poke(placed.addr, placed.payload)


def begin(nvram, log, txid):
    append(nvram, log, LogRecord(RecordKind.BEGIN, txid, 0))


def data(nvram, log, txid, addr, old, new):
    append(nvram, log, LogRecord(RecordKind.DATA, txid, 0, addr, old, new))


def commit(nvram, log, txid):
    append(nvram, log, LogRecord(RecordKind.COMMIT, txid, 0))


class TestWindowScan:
    def test_empty_log(self, env):
        _nvram, _log, manager = env
        assert manager.scan_window() == []

    def test_prefix_before_wrap(self, env):
        nvram, log, manager = env
        begin(nvram, log, 1)
        data(nvram, log, 1, 0x100, b"A" * 8, b"B" * 8)
        commit(nvram, log, 1)
        window = manager.scan_window()
        assert [r.kind for r in window] == [
            RecordKind.BEGIN,
            RecordKind.DATA,
            RecordKind.COMMIT,
        ]

    def test_wrapped_window_in_history_order(self, env):
        nvram, log, manager = env
        for i in range(10):  # wraps an 8-entry ring
            data(nvram, log, 1, 0x100 + i * 8, b"A" * 8, bytes([i]) * 8)
        window = manager.scan_window()
        assert len(window) == 8
        values = [r.redo[0] for r in window]
        assert values == [2, 3, 4, 5, 6, 7, 8, 9]

    def test_exact_wrap_boundary(self, env):
        nvram, log, manager = env
        for i in range(8):
            data(nvram, log, 1, 0x100 + i * 8, b"A" * 8, bytes([i]) * 8)
        window = manager.scan_window()
        assert [r.redo[0] for r in window] == list(range(8))


class TestReplay:
    def test_committed_transaction_redone(self, env):
        nvram, log, manager = env
        begin(nvram, log, 1)
        data(nvram, log, 1, 0x100, b"O" * 8, b"N" * 8)
        commit(nvram, log, 1)
        report = manager.recover()
        assert report.committed_instances == 1
        assert report.redo_writes == 1
        assert nvram.peek(0x100, 8) == b"N" * 8

    def test_uncommitted_transaction_undone(self, env):
        nvram, log, manager = env
        nvram.poke(0x100, b"N" * 8)  # the store stole its way to NVRAM
        begin(nvram, log, 1)
        data(nvram, log, 1, 0x100, b"O" * 8, b"N" * 8)
        report = manager.recover()
        assert report.uncommitted_instances == 1
        assert report.undo_writes == 1
        assert nvram.peek(0x100, 8) == b"O" * 8

    def test_multi_write_undo_in_reverse(self, env):
        nvram, log, manager = env
        begin(nvram, log, 1)
        data(nvram, log, 1, 0x100, b"0" * 8, b"1" * 8)
        data(nvram, log, 1, 0x100, b"1" * 8, b"2" * 8)
        nvram.poke(0x100, b"2" * 8)
        manager.recover()
        assert nvram.peek(0x100, 8) == b"0" * 8

    def test_redo_applied_in_order(self, env):
        nvram, log, manager = env
        begin(nvram, log, 1)
        data(nvram, log, 1, 0x100, b"0" * 8, b"1" * 8)
        data(nvram, log, 1, 0x100, b"1" * 8, b"2" * 8)
        commit(nvram, log, 1)
        manager.recover()
        assert nvram.peek(0x100, 8) == b"2" * 8

    def test_mixed_transactions(self, env):
        nvram, log, manager = env
        begin(nvram, log, 1)
        data(nvram, log, 1, 0x100, b"A" * 8, b"B" * 8)
        commit(nvram, log, 1)
        begin(nvram, log, 2)
        data(nvram, log, 2, 0x200, b"C" * 8, b"D" * 8)
        nvram.poke(0x200, b"D" * 8)
        report = manager.recover()
        assert report.committed_instances == 1
        assert report.uncommitted_instances == 1
        assert nvram.peek(0x100, 8) == b"B" * 8
        assert nvram.peek(0x200, 8) == b"C" * 8

    def test_physical_txid_reuse(self, env):
        """Same txid committed twice: each instance handled separately."""
        nvram, log, manager = env
        begin(nvram, log, 5)
        data(nvram, log, 5, 0x100, b"0" * 8, b"1" * 8)
        commit(nvram, log, 5)
        begin(nvram, log, 5)
        data(nvram, log, 5, 0x100, b"1" * 8, b"2" * 8)
        report = manager.recover()
        assert report.committed_instances == 1
        assert report.uncommitted_instances == 1
        assert nvram.peek(0x100, 8) == b"1" * 8

    def test_orphan_data_with_commit_is_redone(self, env):
        """A txn whose BEGIN was overwritten but whose COMMIT survived."""
        nvram, log, manager = env
        data(nvram, log, 3, 0x100, b"X" * 8, b"Y" * 8)
        commit(nvram, log, 3)
        manager.recover()
        assert nvram.peek(0x100, 8) == b"Y" * 8

    def test_undo_only_records_skip_redo(self, env):
        nvram, log, manager = env
        nvram.poke(0x100, b"KEEPKEEP")
        begin(nvram, log, 1)
        data(nvram, log, 1, 0x100, b"O" * 8, b"")  # undo-only (sw undo)
        commit(nvram, log, 1)
        report = manager.recover()
        assert report.redo_writes == 0
        assert nvram.peek(0x100, 8) == b"KEEPKEEP"

    def test_log_reset_after_recovery(self, env):
        nvram, log, manager = env
        begin(nvram, log, 1)
        commit(nvram, log, 1)
        manager.recover()
        assert manager.scan_window() == []
        assert log.tail == 0 and not log.wrapped

    def test_recover_without_reset(self, env):
        nvram, log, manager = env
        begin(nvram, log, 1)
        commit(nvram, log, 1)
        manager.recover(reset_log=False)
        assert len(manager.scan_window()) == 2

    def test_report_counts(self, env):
        nvram, log, manager = env
        report = manager.recover()
        assert report.records_scanned == 8
        assert report.window_entries == 0
        assert report.total_writes == 0
