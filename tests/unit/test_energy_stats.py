"""Unit tests for repro.sim.energy and repro.sim.stats."""

from repro.sim.config import EnergyConfig
from repro.sim.energy import EnergyModel
from repro.sim.stats import MachineStats


class TestEnergyModel:
    def test_row_hit_read_energy(self):
        stats = MachineStats()
        EnergyModel(EnergyConfig(), stats).nvram_read(8, row_hit=True)
        assert stats.energy_nvram_pj == 0.93 * 64

    def test_row_conflict_read_adds_array(self):
        stats = MachineStats()
        EnergyModel(EnergyConfig(), stats).nvram_read(8, row_hit=False)
        assert stats.energy_nvram_pj == (0.93 + 2.47) * 64

    def test_write_always_pays_array(self):
        stats = MachineStats()
        model = EnergyModel(EnergyConfig(), stats)
        model.nvram_write(8, row_hit=True)
        hit_energy = stats.energy_nvram_pj
        assert hit_energy == (1.02 + 16.82) * 64

    def test_write_energy_dominates_read(self):
        s1, s2 = MachineStats(), MachineStats()
        EnergyModel(EnergyConfig(), s1).nvram_write(64, row_hit=True)
        EnergyModel(EnergyConfig(), s2).nvram_read(64, row_hit=True)
        assert s1.energy_nvram_pj > 5 * s2.energy_nvram_pj

    def test_cache_levels(self):
        stats = MachineStats()
        model = EnergyModel(EnergyConfig(), stats)
        model.cache_access("l1")
        l1 = stats.energy_cache_pj
        model.cache_access("llc")
        assert stats.energy_cache_pj - l1 > l1

    def test_instruction_energy(self):
        stats = MachineStats()
        EnergyModel(EnergyConfig(), stats).instructions(10)
        assert stats.energy_core_pj == 700.0


class TestMachineStats:
    def test_ipc_zero_when_idle(self):
        assert MachineStats().ipc == 0.0

    def test_ipc(self):
        stats = MachineStats(instructions=100, cycles=50.0)
        assert stats.ipc == 2.0

    def test_throughput(self):
        stats = MachineStats(transactions_committed=10, cycles=1e6)
        assert stats.throughput == 10.0

    def test_throughput_zero_cycles(self):
        assert MachineStats(transactions_committed=5).throughput == 0.0

    def test_traffic_sum(self):
        stats = MachineStats(nvram_read_bytes=10, nvram_write_bytes=20)
        assert stats.nvram_traffic_bytes == 30

    def test_l1_hit_rate(self):
        stats = MachineStats(l1_hits=3, l1_misses=1)
        assert stats.l1_hit_rate == 0.75

    def test_l1_hit_rate_no_accesses(self):
        assert MachineStats().l1_hit_rate == 0.0

    def test_total_energy_sums_components(self):
        stats = MachineStats(
            energy_nvram_pj=1.0, energy_cache_pj=2.0, energy_core_pj=3.0
        )
        assert stats.total_dynamic_energy_pj == 6.0
        assert stats.memory_dynamic_energy_pj == 1.0

    def test_per_core_recording(self):
        stats = MachineStats()
        stats.record_core(0, 100, 50.0)
        stats.record_core(1, 200, 75.0)
        assert stats.per_core_instructions == {0: 100, 1: 200}
        assert stats.per_core_cycles[1] == 75.0

    def test_snapshot_keys(self):
        snapshot = MachineStats().snapshot()
        for key in ("instructions", "cycles", "ipc", "throughput_per_mcycle"):
            assert key in snapshot
