"""Unit tests for repro.sim.config."""

import pytest

from repro.errors import ConfigError
from repro.sim.config import (
    CacheConfig,
    CoreConfig,
    EnergyConfig,
    LoggingConfig,
    MemCtrlConfig,
    NVDimmConfig,
    SystemConfig,
)


class TestCoreConfig:
    def test_defaults_validate(self):
        CoreConfig().validate()

    def test_rejects_zero_clock(self):
        with pytest.raises(ConfigError):
            CoreConfig(clock_ghz=0).validate()

    def test_rejects_exposure_above_one(self):
        with pytest.raises(ConfigError):
            CoreConfig(load_miss_exposed=1.5).validate()


class TestCacheConfig:
    def test_table_ii_l1_geometry(self):
        cache = CacheConfig()
        assert cache.num_lines == 512
        assert cache.num_sets == 64

    def test_table_ii_llc_geometry(self):
        llc = CacheConfig(size_bytes=8 * 1024 * 1024, ways=16, latency_ns=4.4)
        assert llc.num_lines == 131072
        assert llc.num_sets == 8192

    def test_latency_cycles(self):
        assert CacheConfig().latency_cycles(2.5) == 4

    def test_rejects_non_power_of_two_line(self):
        with pytest.raises(ConfigError):
            CacheConfig(line_size=48).validate()

    def test_rejects_uneven_ways(self):
        with pytest.raises(ConfigError):
            CacheConfig(size_bytes=4096, ways=3).validate()


class TestNVDimmConfig:
    def test_defaults_validate(self):
        NVDimmConfig().validate()

    def test_rejects_odd_banks(self):
        with pytest.raises(ConfigError):
            NVDimmConfig(num_banks=6).validate()

    def test_rejects_interleave_beyond_row(self):
        with pytest.raises(ConfigError):
            NVDimmConfig(interleave_bytes=4096, row_bytes=2048).validate()

    def test_rejects_zero_row_buffers(self):
        with pytest.raises(ConfigError):
            NVDimmConfig(row_buffers_per_bank=0).validate()


class TestLoggingConfig:
    def test_paper_log_size(self):
        logging = LoggingConfig()
        assert logging.log_bytes == 4 * 1024 * 1024  # 64K x 64B = 4 MB

    def test_rejects_odd_entry_size(self):
        with pytest.raises(ConfigError):
            LoggingConfig(log_entry_size=48).validate()

    def test_rejects_negative_buffer(self):
        with pytest.raises(ConfigError):
            LoggingConfig(log_buffer_entries=-1).validate()

    def test_zero_buffer_is_legal(self):
        LoggingConfig(log_buffer_entries=0).validate()


class TestSystemConfig:
    def test_defaults_validate(self):
        SystemConfig().validate()

    def test_line_size_must_match(self):
        config = SystemConfig(l1=CacheConfig(line_size=32, size_bytes=4096, ways=4))
        with pytest.raises(ConfigError):
            config.validate()

    def test_log_must_fit_nvram(self):
        config = SystemConfig(
            nvram=NVDimmConfig(size_bytes=2 * 1024 * 1024),
            logging=LoggingConfig(log_entries=65536),
        )
        with pytest.raises(ConfigError):
            config.validate()

    def test_store_traversal_matches_paper_bound(self):
        # 4-cycle L1 + 11-cycle LLC = 15, the paper's <= 15-entry bound.
        config = SystemConfig()
        assert config.min_store_traversal_cycles() == 15
        assert config.max_persistent_log_buffer_entries() == 15

    def test_scaled_replaces_fields(self):
        config = SystemConfig().scaled(num_cores=8)
        assert config.num_cores == 8
        assert SystemConfig().num_cores == 4

    def test_rejects_zero_cores(self):
        with pytest.raises(ConfigError):
            SystemConfig(num_cores=0).validate()


class TestEnergyConfig:
    def test_table_ii_values(self):
        energy = EnergyConfig()
        assert energy.nvram_row_buffer_read_pj_per_bit == 0.93
        assert energy.nvram_row_buffer_write_pj_per_bit == 1.02
        assert energy.nvram_array_read_pj_per_bit == 2.47
        assert energy.nvram_array_write_pj_per_bit == 16.82

    def test_rejects_negative(self):
        with pytest.raises(ConfigError):
            EnergyConfig(nvram_array_write_pj_per_bit=-1).validate()


class TestMemCtrlConfig:
    def test_table_ii_queues(self):
        config = MemCtrlConfig()
        assert config.read_queue_entries == 64
        assert config.write_queue_entries == 64

    def test_rejects_zero_queue(self):
        with pytest.raises(ConfigError):
            MemCtrlConfig(write_queue_entries=0).validate()
