"""Unit tests for repro.sim.wcb (write-combining buffer)."""

import pytest

from repro.sim.config import EnergyConfig, MemCtrlConfig, NVDimmConfig
from repro.sim.energy import EnergyModel
from repro.sim.memctrl import MemoryController
from repro.sim.nvram import NVRAM
from repro.sim.stats import MachineStats
from repro.sim.wcb import WriteCombiningBuffer


@pytest.fixture
def setup():
    stats = MachineStats()
    nvram_config = NVDimmConfig(size_bytes=1024 * 1024)
    nvram = NVRAM(nvram_config)
    mc = MemoryController(
        MemCtrlConfig(), nvram_config, nvram, EnergyModel(EnergyConfig(), stats), stats, 2.5
    )
    wcb = WriteCombiningBuffer(4, 64, mc, stats)
    return wcb, nvram, stats


class TestCoalescing:
    def test_same_line_coalesces(self, setup):
        wcb, _, _ = setup
        wcb.push(0, b"AAAA", 0.0)
        wcb.push(8, b"BBBB", 1.0)
        assert wcb.occupancy == 1

    def test_distinct_lines_use_slots(self, setup):
        wcb, _, _ = setup
        wcb.push(0, b"A", 0.0)
        wcb.push(64, b"B", 0.0)
        assert wcb.occupancy == 2

    def test_full_buffer_drains_oldest(self, setup):
        wcb, nvram, _ = setup
        for i in range(5):
            wcb.push(i * 64, bytes([i]), float(i))
        assert wcb.occupancy == 4
        assert nvram.peek(0, 1) == b"\x00"  # oldest entry drained

    def test_drain_writes_covered_slice_only(self, setup):
        wcb, nvram, _ = setup
        wcb.push(8, b"XY", 0.0)
        wcb.flush(1.0)
        assert nvram.peek(8, 2) == b"XY"
        assert nvram.total_write_bytes == 2


class TestFlush:
    def test_flush_empties(self, setup):
        wcb, _, _ = setup
        wcb.push(0, b"A", 0.0)
        wcb.push(64, b"B", 0.0)
        completion = wcb.flush(1.0)
        assert wcb.occupancy == 0
        assert completion > 1.0

    def test_flush_completion_monotone(self, setup):
        wcb, _, _ = setup
        wcb.push(0, b"A", 0.0)
        first = wcb.flush(1.0)
        wcb.push(64, b"B", first + 1)
        second = wcb.flush(first + 2)
        assert second >= first

    def test_ordered_durability(self, setup):
        """Log records drain with monotone non-decreasing completions."""
        wcb, _, _ = setup
        completions = []
        for i in range(10):
            wcb.push(i * 64, bytes(8), 0.0)
            completions.append(wcb.flush(0.0))
        assert completions == sorted(completions)


class TestCrash:
    def test_drop_loses_buffered_entries(self, setup):
        wcb, nvram, _ = setup
        wcb.push(0, b"LOST", 0.0)
        wcb.drop()
        assert wcb.occupancy == 0
        assert nvram.peek(0, 4) == bytes(4)
