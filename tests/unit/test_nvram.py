"""Unit tests for repro.sim.nvram."""

import pytest

from repro.errors import AddressError
from repro.sim.config import NVDimmConfig
from repro.sim.nvram import NVRAM


@pytest.fixture
def nvram():
    return NVRAM(NVDimmConfig(size_bytes=1024 * 1024))


class TestFunctionalAccess:
    def test_starts_zeroed(self, nvram):
        assert nvram.read(0, 16) == bytes(16)

    def test_write_then_read(self, nvram):
        nvram.write(100, b"hello", completion_time=1.0)
        assert nvram.read(100, 5) == b"hello"

    def test_peek_does_not_count_traffic(self, nvram):
        nvram.peek(0, 64)
        assert nvram.total_read_bytes == 0

    def test_read_counts_traffic(self, nvram):
        nvram.read(0, 64)
        assert nvram.total_read_bytes == 64

    def test_write_counts_traffic(self, nvram):
        nvram.write(0, bytes(64))
        assert nvram.total_write_bytes == 64

    def test_poke_does_not_count_or_journal(self, nvram):
        nvram.poke(0, b"xyz")
        assert nvram.total_write_bytes == 0
        assert nvram.journal_length == 0
        assert nvram.peek(0, 3) == b"xyz"

    def test_out_of_range_read(self, nvram):
        with pytest.raises(AddressError):
            nvram.read(1024 * 1024 - 4, 8)

    def test_out_of_range_write(self, nvram):
        with pytest.raises(AddressError):
            nvram.write(1024 * 1024, b"x")


class TestGeometry:
    def test_line_interleaved_banks(self, nvram):
        banks = [nvram.bank_of(line * 64) for line in range(8)]
        assert banks == list(range(8))

    def test_bank_wraps(self, nvram):
        assert nvram.bank_of(8 * 64) == 0

    def test_row_covers_stripe(self, nvram):
        stripe = 2048 * 8
        assert nvram.row_of(0) == nvram.row_of(stripe - 1)
        assert nvram.row_of(stripe) == 1


class TestRowBuffers:
    def test_first_access_misses(self, nvram):
        assert nvram.row_buffer_access(0, 5) is False

    def test_second_access_hits(self, nvram):
        nvram.row_buffer_access(0, 5)
        assert nvram.row_buffer_access(0, 5) is True

    def test_lru_eviction(self):
        nvram = NVRAM(NVDimmConfig(size_bytes=1024 * 1024, row_buffers_per_bank=2))
        nvram.row_buffer_access(0, 1)
        nvram.row_buffer_access(0, 2)
        nvram.row_buffer_access(0, 3)  # evicts row 1
        assert nvram.row_buffer_access(0, 1) is False
        assert nvram.row_buffer_access(0, 3) is True

    def test_touch_refreshes_lru(self):
        nvram = NVRAM(NVDimmConfig(size_bytes=1024 * 1024, row_buffers_per_bank=2))
        nvram.row_buffer_access(0, 1)
        nvram.row_buffer_access(0, 2)
        nvram.row_buffer_access(0, 1)  # refresh row 1
        nvram.row_buffer_access(0, 3)  # evicts row 2
        assert nvram.row_buffer_access(0, 1) is True
        assert nvram.row_buffer_access(0, 2) is False


class TestCrashJournal:
    def test_revert_discards_late_writes(self, nvram):
        nvram.write(0, b"AAAA", completion_time=10.0)
        nvram.write(0, b"BBBB", completion_time=20.0)
        reverted = nvram.revert_after(15.0)
        assert reverted == 1
        assert nvram.peek(0, 4) == b"AAAA"

    def test_revert_keeps_durable_writes(self, nvram):
        nvram.write(0, b"AAAA", completion_time=10.0)
        assert nvram.revert_after(10.0) == 0
        assert nvram.peek(0, 4) == b"AAAA"

    def test_revert_restores_in_reverse_order(self, nvram):
        nvram.write(0, b"11", completion_time=5.0)
        nvram.write(0, b"22", completion_time=6.0)
        nvram.write(0, b"33", completion_time=7.0)
        nvram.revert_after(5.5)
        assert nvram.peek(0, 2) == b"11"

    def test_retire_journal_bounds_memory(self, nvram):
        for i in range(10):
            nvram.write(i * 8, bytes(8), completion_time=float(i))
        nvram.retire_journal(5.0)
        assert nvram.journal_length == 4

    def test_revert_disabled_without_tracking(self):
        nvram = NVRAM(NVDimmConfig(size_bytes=1024 * 1024), track_crash_state=False)
        nvram.write(0, b"A", completion_time=1.0)
        with pytest.raises(AddressError):
            nvram.revert_after(0.0)


class TestRegions:
    def test_region_accounting(self, nvram):
        nvram.register_region("log", 0, 1024)
        nvram.register_region("heap", 1024, 1024)
        nvram.write(100, bytes(8))
        nvram.write(1500, bytes(16))
        assert nvram.region_write_bytes["log"] == 8
        assert nvram.region_write_bytes["heap"] == 16

    def test_region_out_of_range(self, nvram):
        with pytest.raises(AddressError):
            nvram.register_region("bad", 0, 2 * 1024 * 1024)
