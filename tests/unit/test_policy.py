"""Unit tests for repro.core.policy."""

import pytest

from repro.core.policy import MICROBENCH_POLICIES, Policy


class TestNames:
    def test_paper_names(self):
        assert {p.value for p in Policy} == {
            "non-pers",
            "unsafe-base",
            "redo-clwb",
            "undo-clwb",
            "hw-rlog",
            "hw-ulog",
            "hwl",
            "fwb",
        }

    def test_from_name(self):
        assert Policy.from_name("fwb") is Policy.FWB

    def test_from_name_unknown(self):
        with pytest.raises(ValueError):
            Policy.from_name("nope")

    def test_paper_order(self):
        assert MICROBENCH_POLICIES[0] is Policy.NON_PERS
        assert MICROBENCH_POLICIES[-1] is Policy.FWB


class TestStructure:
    def test_hw_vs_sw_partition(self):
        for policy in Policy:
            assert not (policy.uses_hw_logging and policy.uses_sw_logging)

    def test_non_pers_logs_nothing(self):
        assert not Policy.NON_PERS.logs_undo
        assert not Policy.NON_PERS.logs_redo

    def test_hwl_and_fwb_log_both_sides(self):
        for policy in (Policy.HWL, Policy.FWB):
            assert policy.logs_undo and policy.logs_redo

    def test_single_side_hw(self):
        assert Policy.HW_RLOG.logs_redo and not Policy.HW_RLOG.logs_undo
        assert Policy.HW_ULOG.logs_undo and not Policy.HW_ULOG.logs_redo

    def test_clwb_users(self):
        assert {p for p in Policy if p.uses_clwb_at_commit} == {
            Policy.REDO_CLWB,
            Policy.UNDO_CLWB,
            Policy.HWL,
        }

    def test_only_fwb_uses_fwb(self):
        assert [p for p in Policy if p.uses_fwb] == [Policy.FWB]

    def test_persistence_guarantees(self):
        guaranteed = {p for p in Policy if p.persistence_guaranteed}
        assert guaranteed == {
            Policy.REDO_CLWB,
            Policy.UNDO_CLWB,
            Policy.HWL,
            Policy.FWB,
        }

    def test_unsafe_designs_not_guaranteed(self):
        for policy in (Policy.UNSAFE_BASE, Policy.HW_RLOG, Policy.HW_ULOG):
            assert not policy.persistence_guaranteed

    def test_only_redo_defers_stores(self):
        assert [p for p in Policy if p.defers_in_place_stores] == [Policy.REDO_CLWB]

    def test_wrap_protection_matches_guarantee(self):
        for policy in Policy:
            assert policy.protects_log_wrap == policy.persistence_guaranteed
