"""Unit tests for repro.core.policy."""

import pytest

from repro.core.policy import MICROBENCH_POLICIES, Policy


class TestNames:
    def test_paper_names(self):
        assert {p.value for p in Policy} == {
            "non-pers",
            "unsafe-base",
            "redo-clwb",
            "undo-clwb",
            "hw-rlog",
            "hw-ulog",
            "hwl",
            "fwb",
        }

    def test_from_name(self):
        assert Policy.from_name("fwb") is Policy.FWB

    def test_from_name_covers_every_member(self):
        for policy in Policy:
            assert Policy.from_name(policy.value) is policy

    def test_from_name_unknown(self):
        with pytest.raises(ValueError):
            Policy.from_name("nope")

    def test_from_name_unknown_suggests(self):
        with pytest.raises(ValueError, match="did you mean.*undo-clwb"):
            Policy.from_name("undo-clbw")

    def test_paper_order(self):
        assert MICROBENCH_POLICIES[0] is Policy.NON_PERS
        assert MICROBENCH_POLICIES[-1] is Policy.FWB


class TestStructure:
    def test_hw_vs_sw_partition(self):
        for policy in Policy:
            assert not (policy.uses_hw_logging and policy.uses_sw_logging)

    def test_non_pers_logs_nothing(self):
        assert not Policy.NON_PERS.logs_undo
        assert not Policy.NON_PERS.logs_redo

    def test_hwl_and_fwb_log_both_sides(self):
        for policy in (Policy.HWL, Policy.FWB):
            assert policy.logs_undo and policy.logs_redo

    def test_single_side_hw(self):
        assert Policy.HW_RLOG.logs_redo and not Policy.HW_RLOG.logs_undo
        assert Policy.HW_ULOG.logs_undo and not Policy.HW_ULOG.logs_redo

    def test_clwb_users(self):
        assert {p for p in Policy if p.uses_clwb_at_commit} == {
            Policy.REDO_CLWB,
            Policy.UNDO_CLWB,
            Policy.HWL,
        }

    def test_only_fwb_uses_fwb(self):
        assert [p for p in Policy if p.uses_fwb] == [Policy.FWB]

    def test_persistence_guarantees(self):
        guaranteed = {p for p in Policy if p.persistence_guaranteed}
        assert guaranteed == {
            Policy.REDO_CLWB,
            Policy.UNDO_CLWB,
            Policy.HWL,
            Policy.FWB,
        }

    def test_unsafe_designs_not_guaranteed(self):
        for policy in (Policy.UNSAFE_BASE, Policy.HW_RLOG, Policy.HW_ULOG):
            assert not policy.persistence_guaranteed

    def test_only_redo_defers_stores(self):
        assert [p for p in Policy if p.defers_in_place_stores] == [Policy.REDO_CLWB]

    def test_wrap_protection_matches_guarantee(self):
        for policy in Policy:
            assert policy.protects_log_wrap == policy.persistence_guaranteed


class TestDesignAlias:
    """Policy is a thin alias over the design registry."""

    def test_design_attribute_is_registered_spec(self):
        from repro.core.design import DESIGNS

        for policy in Policy:
            assert policy.design is DESIGNS.get(policy.value)

    def test_predicates_delegate_to_design(self):
        for policy in Policy:
            spec = policy.design
            assert policy.uses_hw_logging == spec.uses_hw_logging
            assert policy.uses_sw_logging == spec.uses_sw_logging
            assert policy.logs_undo == spec.logs_undo
            assert policy.logs_redo == spec.logs_redo
            assert policy.uses_clwb_at_commit == spec.uses_clwb_at_commit
            assert policy.uses_fwb == spec.uses_fwb
            assert policy.defers_in_place_stores == spec.defers_in_place_stores
            assert policy.persistence_guaranteed == spec.persistence_guaranteed
            assert policy.protects_log_wrap == spec.protects_log_wrap

    def test_policy_identity_still_works(self):
        # Enum identity semantics survive the custom __eq__/__hash__.
        assert Policy.FWB is Policy("fwb")
        assert Policy.FWB == Policy.FWB
        assert Policy.FWB != Policy.HWL
        assert len({Policy.FWB, Policy.FWB.design}) == 1
