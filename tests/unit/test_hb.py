"""Unit tests for the vector-clock race detector (repro.sanitizer.hb)."""

from __future__ import annotations

from repro.sanitizer.hb import RaceDetector, detect_races
from repro.sim.ctrace import sym_token
from tests.conftest import synthetic_trace

A = 0x1000
B = 0x2000


class TestDetectorAlgebra:
    def test_unordered_write_write_races(self):
        d = RaceDetector()
        d.write(0, A, 8, op_index=0)
        d.write(1, A, 8, op_index=0)
        report = d.finish()
        assert len(report.races) == 1
        race = report.races[0]
        assert {race.first.tid, race.second.tid} == {0, 1}

    def test_unordered_read_write_races(self):
        d = RaceDetector()
        d.read(0, A, 8, op_index=0)
        d.write(1, A, 8, op_index=0)
        assert len(d.finish().races) == 1

    def test_write_read_races(self):
        d = RaceDetector()
        d.write(0, A, 8, op_index=0)
        d.read(1, A, 8, op_index=0)
        report = d.finish()
        assert len(report.races) == 1
        assert report.races[0].second.kind == "read"

    def test_concurrent_reads_do_not_race(self):
        d = RaceDetector()
        d.read(0, A, 8, op_index=0)
        d.read(1, A, 8, op_index=1)
        d.read(2, A, 8, op_index=2)
        assert d.finish().clean

    def test_same_thread_never_races(self):
        d = RaceDetector()
        d.write(0, A, 8, op_index=0)
        d.read(0, A, 8, op_index=1)
        d.write(0, A, 8, op_index=2)
        assert d.finish().clean

    def test_release_acquire_orders_accesses(self):
        d = RaceDetector()
        d.write(0, A, 8, op_index=0)
        d.release(0, "lock")
        d.acquire(1, "lock")
        d.write(1, A, 8, op_index=1)
        assert d.finish().clean

    def test_acquire_of_unreleased_object_gives_no_edge(self):
        d = RaceDetector()
        d.write(0, A, 8, op_index=0)
        d.acquire(1, "lock")  # nothing was released on "lock"
        d.write(1, A, 8, op_index=1)
        assert len(d.finish().races) == 1

    def test_transitive_ordering_through_chain(self):
        d = RaceDetector()
        d.write(0, A, 8, op_index=0)
        d.release(0, "x")
        d.acquire(1, "x")
        d.release(1, "y")
        d.acquire(2, "y")
        d.write(2, A, 8, op_index=1)
        assert d.finish().clean

    def test_distinct_words_do_not_race(self):
        d = RaceDetector()
        d.write(0, 0x1000, 8, op_index=0)
        d.write(1, 0x1008, 8, op_index=0)
        assert d.finish().clean

    def test_word_granularity_catches_overlap(self):
        # [0x1004, 0x100c) straddles the words at 0x1000 and 0x1008.
        d = RaceDetector()
        d.write(0, 0x1000, 8, op_index=0)
        d.write(1, 0x1004, 8, op_index=0)
        assert len(d.finish().races) == 1

    def test_multi_word_span_races_once_per_word(self):
        d = RaceDetector()
        d.write(0, A, 16, op_index=0)  # two words
        d.write(1, A, 16, op_index=0)
        assert len(d.finish().races) == 2

    def test_max_races_truncates(self):
        d = RaceDetector(max_races=2)
        for i in range(4):
            d.write(0, A + 8 * i, 8, op_index=i)
            d.write(1, A + 8 * i, 8, op_index=i)
        report = d.finish()
        assert len(report.races) == 2
        assert report.truncated

    def test_counters(self):
        d = RaceDetector()
        d.write(0, A, 8, op_index=0)
        d.read(0, B, 8, op_index=1)
        report = d.finish()
        assert report.accesses == 2
        assert report.words_tracked == 2


class TestDetectRacesOnTraces:
    def test_partitioned_threads_are_clean(self):
        trace = synthetic_trace(
            [("begin",), ("write", (A, 8)), ("read", A, 8), ("commit",)],
            [("begin",), ("write", (B, 8)), ("read", B, 8), ("commit",)],
        )
        report = detect_races(trace)
        assert report.clean
        assert report.accesses == 4

    def test_shared_word_write_write_races(self):
        trace = synthetic_trace(
            [("write", (A, 8))],
            [("write", (A, 8))],
        )
        report = detect_races(trace)
        assert len(report.races) == 1

    def test_transactions_are_not_synchronization(self):
        # The designs order persists; they do not provide isolation, so
        # wrapping the accesses in transactions must not hide the race.
        trace = synthetic_trace(
            [("begin",), ("write", (A, 8)), ("commit",)],
            [("begin",), ("write", (A, 8)), ("commit",)],
        )
        assert not detect_races(trace).clean

    def test_free_races_with_foreign_access(self):
        trace = synthetic_trace(
            [("read", A, 8)],
            [("free", A, 8)],
        )
        report = detect_races(trace)
        assert len(report.races) == 1
        assert "free" in {r.first.kind for r in report.races} | {
            r.second.kind for r in report.races
        }

    def test_symbolic_blocks_never_alias(self):
        # Distinct symbolic blocks are distinct allocations by
        # construction; same block + same offset is the same word.
        trace = synthetic_trace(
            [("write", (sym_token(1), 8))],
            [("write", (sym_token(2), 8))],
            [("write", (sym_token(1), 8))],
        )
        report = detect_races(trace)
        assert len(report.races) == 1
        assert report.races[0].word == sym_token(1)

    def test_race_report_renders(self):
        trace = synthetic_trace([("write", (A, 8))], [("write", (A, 8))])
        rendered = detect_races(trace).render()
        assert "race on word" in rendered
        clean = detect_races(
            synthetic_trace([("write", (A, 8))])
        ).render()
        assert "clean" in clean
