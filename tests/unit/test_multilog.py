"""Unit tests for repro.core.multilog (distributed per-thread logs)."""

import pytest

from repro import Machine, PersistentMemory, Policy
from repro.core.multilog import LogRouter, recover_all, split_log_region
from repro.core.logbuffer import LogBuffer
from repro.errors import LogError
from repro.sim.config import LoggingConfig
from tests.conftest import tiny_system, word


class TestSplit:
    def test_split_geometry(self):
        rings = split_log_region(0x1000, 128, 64, 4)
        assert len(rings) == 4
        assert [ring.num_entries for ring in rings] == [32] * 4
        assert rings[1].base == 0x1000 + 32 * 64
        assert rings[3].end == 0x1000 + 128 * 64

    def test_uneven_split_rejected(self):
        with pytest.raises(LogError):
            split_log_region(0x1000, 100, 64, 3)

    def test_zero_ways_rejected(self):
        with pytest.raises(LogError):
            split_log_region(0x1000, 128, 64, 0)


class TestRouter:
    def test_routes_by_tid_modulo(self):
        rings = split_log_region(0x1000, 64, 64, 2)
        router = LogRouter(rings, [None, None])
        assert router.log_for(0) is rings[0]
        assert router.log_for(1) is rings[1]
        assert router.log_for(2) is rings[0]

    def test_primary_and_distribution(self):
        rings = split_log_region(0x1000, 64, 64, 2)
        router = LogRouter(rings, [None, None])
        assert router.primary is rings[0]
        assert router.is_distributed
        single = LogRouter(rings[:1], [None])
        assert not single.is_distributed

    def test_mismatched_buffers_rejected(self):
        rings = split_log_region(0x1000, 64, 64, 2)
        with pytest.raises(LogError):
            LogRouter(rings, [None])


class TestMachineIntegration:
    def _machine(self, rings=2):
        return Machine(
            tiny_system(logging=LoggingConfig(log_entries=128, distributed_logs=rings)),
            Policy.FWB,
        )

    def test_machine_builds_rings_and_buffers(self):
        machine = self._machine()
        assert len(machine.logs) == 2
        assert machine.log is machine.logs[0]
        assert machine.log_router.is_distributed
        assert isinstance(machine.log_router.buffer_for(1), LogBuffer)
        assert machine.log_router.buffer_for(0) is not machine.log_router.buffer_for(1)

    def test_threads_append_to_their_own_rings(self):
        machine = self._machine()
        pm = PersistentMemory(machine)
        addr = pm.heap.alloc(16)
        for tid in range(2):
            api = pm.api(tid, tid)
            with api.transaction():
                api.write(addr + tid * 8, word(tid + 1))
        assert machine.logs[0].appended > 0
        assert machine.logs[1].appended > 0

    def test_recover_all_replays_both_rings(self):
        machine = self._machine()
        pm = PersistentMemory(machine)
        slots = [pm.heap.alloc(8) for _ in range(2)]
        durables = []
        for tid in range(2):
            api = pm.api(tid, tid)
            api.tx_begin()
            api.write(slots[tid], word(tid + 41))
            durables.append(api.tx_commit())
        machine.crash(at_time=max(durables))
        report = recover_all(machine.nvram, machine.logs)
        assert report.committed_instances == 2
        for tid in range(2):
            assert machine.nvram.peek(slots[tid], 8) == word(tid + 41)

    def test_crash_before_one_commit_rolls_back_only_that_ring(self):
        machine = self._machine()
        pm = PersistentMemory(machine)
        slots = [pm.heap.alloc(8) for _ in range(2)]
        for addr in slots:
            pm.setup_write(addr, word(0))
        api0 = pm.api(0, 0)
        api0.tx_begin()
        api0.write(slots[0], word(1))
        durable0 = api0.tx_commit()
        api1 = pm.api(1, 1)
        api1.tx_begin()
        api1.write(slots[1], word(2))
        durable1 = api1.tx_commit()
        if durable1 <= durable0:
            pytest.skip("ring service order did not produce a gap")
        machine.crash(at_time=durable0)
        recover_all(machine.nvram, machine.logs)
        assert machine.nvram.peek(slots[0], 8) == word(1)
        assert machine.nvram.peek(slots[1], 8) == word(0)
