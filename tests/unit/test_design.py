"""Unit tests for repro.core.design — the composable mechanism space."""

import pytest

from repro.core.design import (
    CANONICAL_DESIGNS,
    DESIGNS,
    FWB,
    HW_RLOG,
    HW_ULOG,
    HWL,
    NON_PERS,
    REDO_CLWB,
    UNDO_CLWB,
    UNSAFE_BASE,
    CommitProtocol,
    DesignRegistry,
    DesignSpec,
    LogBackend,
    LogContent,
    Writeback,
    canonical_order,
    expand_grid,
    parse_design,
    resolve_design,
)
from repro.core.policy import Policy


class TestSpecValidation:
    def test_no_backend_rejects_content(self):
        with pytest.raises(ValueError):
            DesignSpec(
                LogBackend.NONE, LogContent.UNDO, Writeback.NONE, CommitProtocol.INSTANT
            )

    def test_no_backend_rejects_writeback(self):
        with pytest.raises(ValueError):
            DesignSpec(
                LogBackend.NONE, LogContent.NONE, Writeback.CLWB, CommitProtocol.INSTANT
            )

    def test_backend_requires_content(self):
        for backend in (LogBackend.SOFTWARE, LogBackend.HARDWARE):
            with pytest.raises(ValueError):
                DesignSpec(backend, LogContent.NONE, Writeback.NONE, CommitProtocol.FENCED)

    def test_anonymous_spec_gets_mechanism_name(self):
        spec = DesignSpec(
            LogBackend.HARDWARE, LogContent.UNDO, Writeback.CLWB, CommitProtocol.FENCED
        )
        assert spec.name == "hw+undo+clwb"
        assert spec.value == spec.name

    def test_name_excluded_from_equality_and_hash(self):
        anonymous = DesignSpec(
            LogBackend.HARDWARE,
            LogContent.UNDO_REDO,
            Writeback.FWB,
            CommitProtocol.FENCED,
        )
        assert anonymous == FWB
        assert hash(anonymous) == hash(FWB)
        assert anonymous.name != FWB.name


class TestMechanismString:
    @pytest.mark.parametrize("spec", CANONICAL_DESIGNS, ids=lambda s: s.name)
    def test_round_trips_through_parse(self, spec):
        assert parse_design(spec.mechanism_string()) == spec

    def test_instant_commit_is_explicit(self):
        spec = DesignSpec(
            LogBackend.SOFTWARE, LogContent.UNDO, Writeback.NONE, CommitProtocol.INSTANT
        )
        assert spec.mechanism_string() == "sw+undo+nowb+instant"

    def test_both_sides_spelled_out(self):
        assert HWL.mechanism_string() == "hw+undo+redo+clwb"


class TestParse:
    def test_backend_required_first(self):
        with pytest.raises(ValueError, match="backend token"):
            parse_design("undo+hw")

    def test_empty_rejected(self):
        with pytest.raises(ValueError, match="empty"):
            parse_design(" + ")

    def test_unknown_token_rejected(self):
        with pytest.raises(ValueError, match="unknown mechanism token"):
            parse_design("hw+undo+turbo")

    def test_default_commit_is_fenced_for_logging_backends(self):
        assert parse_design("hw+undo").commit is CommitProtocol.FENCED
        assert parse_design("sw+redo+clwb").commit is CommitProtocol.FENCED

    def test_default_commit_is_instant_without_backend(self):
        assert parse_design("none").commit is CommitProtocol.INSTANT

    def test_undo_and_redo_combine(self):
        assert parse_design("hw+undo+redo").log_content is LogContent.UNDO_REDO

    def test_token_order_free_after_backend(self):
        assert parse_design("sw+clwb+undo+fenced") == parse_design("sw+undo+clwb")

    def test_long_backend_spellings(self):
        assert parse_design("hardware+undo+redo+fwb") == FWB
        assert parse_design("software+redo+clwb") == REDO_CLWB


class TestRegistry:
    def test_paper_names_registered(self):
        assert set(DESIGNS.names()) == {
            "non-pers",
            "unsafe-base",
            "redo-clwb",
            "undo-clwb",
            "hw-rlog",
            "hw-ulog",
            "hwl",
            "fwb",
        }

    def test_registered_name_wins_over_token_parse(self):
        # "fwb" is also a write-back token; the paper design must win.
        assert DESIGNS.resolve("fwb") is FWB
        assert DESIGNS.resolve("fwb").logs_undo

    def test_resolve_falls_back_to_mechanism_string(self):
        spec = DESIGNS.resolve("hw+undo+clwb")
        assert spec.log_backend is LogBackend.HARDWARE
        assert spec.writeback is Writeback.CLWB

    def test_unknown_name_suggests_close_matches(self):
        with pytest.raises(ValueError, match="did you mean.*hwl"):
            DESIGNS.get("hlw")

    def test_unknown_name_mentions_composition(self):
        with pytest.raises(ValueError, match="compose one"):
            DESIGNS.resolve("zzzzzz")

    def test_duplicate_registration_rejected(self):
        registry = DesignRegistry()
        registry.register("x", NON_PERS)
        with pytest.raises(ValueError, match="already registered"):
            registry.register("x", NON_PERS)

    def test_contains_and_iter(self):
        assert "hwl" in DESIGNS
        assert "nope" not in DESIGNS
        assert list(DESIGNS) == list(CANONICAL_DESIGNS)


# The legacy predicate truth table, straight from the Policy era.  Each
# row: (design, hw, sw, undo, redo, clwb, fwb, defers, guaranteed).
LEGACY_TABLE = [
    (NON_PERS, 0, 0, 0, 0, 0, 0, 0, 0),
    (UNSAFE_BASE, 0, 1, 1, 0, 0, 0, 0, 0),
    (REDO_CLWB, 0, 1, 0, 1, 1, 0, 1, 1),
    (UNDO_CLWB, 0, 1, 1, 0, 1, 0, 0, 1),
    (HW_RLOG, 1, 0, 0, 1, 0, 0, 0, 0),
    (HW_ULOG, 1, 0, 1, 0, 0, 0, 0, 0),
    (HWL, 1, 0, 1, 1, 1, 0, 0, 1),
    (FWB, 1, 0, 1, 1, 0, 1, 0, 1),
]


class TestDerivedPredicates:
    @pytest.mark.parametrize(
        "spec,hw,sw,undo,redo,clwb,fwb,defers,guaranteed",
        LEGACY_TABLE,
        ids=[row[0].name for row in LEGACY_TABLE],
    )
    def test_matches_legacy_table(
        self, spec, hw, sw, undo, redo, clwb, fwb, defers, guaranteed
    ):
        assert spec.uses_hw_logging == bool(hw)
        assert spec.uses_sw_logging == bool(sw)
        assert spec.logs_undo == bool(undo)
        assert spec.logs_redo == bool(redo)
        assert spec.uses_clwb_at_commit == bool(clwb)
        assert spec.uses_fwb == bool(fwb)
        assert spec.defers_in_place_stores == bool(defers)
        assert spec.persistence_guaranteed == bool(guaranteed)
        assert spec.protects_log_wrap == spec.persistence_guaranteed

    def test_custom_hw_single_side_unguaranteed(self):
        # The paper's core observation: hardware logging needs BOTH log
        # sides for any-instant recovery, regardless of write-back.
        for writeback in ("nowb", "clwb", "fwb"):
            assert not parse_design(f"hw+undo+{writeback}").persistence_guaranteed
            assert not parse_design(f"hw+redo+{writeback}").persistence_guaranteed

    def test_custom_sw_undo_needs_clwb(self):
        assert not parse_design("sw+undo").persistence_guaranteed
        assert parse_design("sw+undo+clwb").persistence_guaranteed

    def test_instant_commit_never_guaranteed(self):
        assert not parse_design("hw+undo+redo+fwb+instant").persistence_guaranteed


class TestPolicyInterop:
    def test_policy_equals_its_spec(self):
        assert Policy.FWB == FWB
        assert FWB == Policy.FWB
        assert Policy.HWL != FWB

    def test_policy_hash_matches_spec(self):
        assert hash(Policy.FWB) == hash(FWB)

    def test_dict_keyed_by_spec_probeable_with_policy(self):
        table = {spec: spec.name for spec in CANONICAL_DESIGNS}
        assert table[Policy.HWL] == "hwl"
        table2 = {policy: policy.value for policy in Policy}
        assert table2[HW_ULOG] == "hw-ulog"

    def test_tuple_keys_interoperate(self):
        data = {("hash", FWB): 1}
        assert data[("hash", Policy.FWB)] == 1

    def test_resolve_design_accepts_policy(self):
        assert resolve_design(Policy.REDO_CLWB) is REDO_CLWB

    def test_resolve_design_accepts_spec_and_string(self):
        assert resolve_design(HWL) is HWL
        assert resolve_design("hwl") is HWL
        assert resolve_design("sw+redo+clwb") == REDO_CLWB

    def test_resolve_design_rejects_garbage(self):
        with pytest.raises(TypeError):
            resolve_design(42)


class TestKeyMaterial:
    def test_excludes_name(self):
        anonymous = parse_design("hw+undo+redo+fwb")
        assert anonymous.key_material() == FWB.key_material()

    def test_covers_every_mechanism(self):
        base = HWL.key_material()
        assert parse_design("sw+undo+redo+clwb").key_material() != base
        assert parse_design("hw+undo+clwb").key_material() != base
        assert parse_design("hw+undo+redo+fwb").key_material() != base
        assert parse_design("hw+undo+redo+clwb+instant").key_material() != base

    def test_json_ready(self):
        import json

        json.dumps(FWB.key_material())


class TestCanonicalOrder:
    def test_paper_order_restored(self):
        shuffled = [FWB, NON_PERS, HWL, UNSAFE_BASE]
        assert canonical_order(shuffled) == [NON_PERS, UNSAFE_BASE, HWL, FWB]

    def test_customs_trail_in_given_order(self):
        a = parse_design("hw+undo+clwb")
        b = parse_design("sw+redo+fwb")
        assert canonical_order([b, FWB, a]) == [FWB, b, a]

    def test_mechanism_equal_alias_folds_into_paper_order(self):
        # hw+undo+nowb is mechanism-equal to the canonical hw-ulog, so
        # by default it sorts as canonical despite its composed name.
        alias = parse_design("hw+undo+nowb")
        custom = parse_design("sw+redo+fwb")
        ordered = canonical_order([custom, alias, FWB])
        assert ordered == [alias, FWB, custom]
        assert ordered[0].value == "hw+undo+nowb"

    def test_strict_names_keeps_alias_with_customs(self):
        alias = parse_design("hw+undo+nowb")
        custom = parse_design("sw+redo+fwb")
        assert canonical_order(
            [custom, alias, FWB], strict_names=True
        ) == [FWB, custom, alias]


class TestExpandGrid:
    def test_skips_invalid_combinations(self):
        grid = expand_grid(["none", "hw"], ["undo"], ["none", "clwb"])
        # none backend tolerates no content/writeback -> only hw survives.
        assert all(spec.log_backend is LogBackend.HARDWARE for spec in grid)
        assert len(grid) == 2

    def test_full_default_axes(self):
        grid = expand_grid(
            ["hw", "sw"], ["undo", "redo", "undo+redo"], ["none", "clwb", "fwb"]
        )
        assert len(grid) == 18
        assert len(set(grid)) == 18

    def test_deduplicates(self):
        grid = expand_grid(["hw", "hw"], ["undo"], ["clwb"])
        assert len(grid) == 1

    def test_contains_canonical_points(self):
        grid = expand_grid(
            ["hw", "sw"], ["undo", "redo", "undo+redo"], ["none", "clwb", "fwb"]
        )
        assert HWL in grid and FWB in grid and REDO_CLWB in grid
