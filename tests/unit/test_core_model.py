"""Unit tests for repro.sim.core (micro-op execution model)."""

import pytest

from repro import Machine, Policy
from repro.errors import SimulationError
from repro.sim.microops import CLWB, Compute, Fence, Load, LogStore, Store, TxBegin, TxCommit
from tests.conftest import tiny_system


@pytest.fixture
def machine():
    return Machine(tiny_system(), Policy.NON_PERS)


@pytest.fixture
def hw_machine():
    return Machine(tiny_system(), Policy.FWB)


class TestCompute:
    def test_advances_time_and_instret(self, machine):
        machine.execute(0, Compute(100))
        core = machine.cores[0]
        assert core.instret == 100
        assert core.time == pytest.approx(100 * 0.35)

    def test_cores_independent(self, machine):
        machine.execute(0, Compute(100))
        assert machine.cores[1].time == 0.0


class TestLoadStore:
    def test_load_returns_data(self, machine):
        machine.nvram.poke(0x2000, b"ABCDEFGH")
        data = machine.execute(0, Load(0x2000, 8))
        assert data == b"ABCDEFGH"

    def test_l1_hit_cheaper_than_miss(self, machine):
        machine.execute(0, Load(0x2000, 8))
        miss_time = machine.cores[0].time
        machine.execute(0, Load(0x2000, 8))
        hit_cost = machine.cores[0].time - miss_time
        assert hit_cost < miss_time

    def test_store_updates_cache_not_nvram(self, machine):
        machine.execute(0, Store(0x2000, b"HELLO!!!"))
        assert machine.execute(0, Load(0x2000, 8)) == b"HELLO!!!"
        assert machine.nvram.peek(0x2000, 8) == bytes(8)

    def test_persistent_store_triggers_hwl(self, hw_machine):
        hw_machine.execute(0, TxBegin(txid=1, tid=0))
        hw_machine.execute(0, Store(0x2000, b"P" * 8, persistent=True, txid=1))
        assert hw_machine.stats.log_records >= 1

    def test_plain_store_skips_hwl(self, hw_machine):
        hw_machine.execute(0, Store(0x2000, b"V" * 8))
        assert hw_machine.stats.log_records == 0


class TestLogStoreOp:
    def test_goes_through_wcb(self, machine):
        machine.execute(0, LogStore(machine.log_base, b"R" * 64))
        assert machine.cores[0].wcb.occupancy == 1
        assert machine.stats.log_records == 1

    def test_charges_uncached_issue(self, machine):
        before = machine.cores[0].time
        machine.execute(0, LogStore(machine.log_base, b"R" * 64))
        assert machine.cores[0].time - before >= 8.0


class TestFenceAndClwb:
    def test_fence_drains_wcb(self, machine):
        machine.execute(0, LogStore(machine.log_base, b"R" * 64))
        machine.execute(0, Fence())
        assert machine.cores[0].wcb.occupancy == 0
        assert machine.nvram.peek(machine.log_base, 1) == b"R"

    def test_fence_waits_for_durability(self, machine):
        machine.execute(0, Store(0x2000, b"D" * 8))
        machine.execute(0, CLWB(0x2000))
        before = machine.cores[0].time
        machine.execute(0, Fence())
        assert machine.cores[0].time > before
        assert machine.stats.fence_stall_cycles > 0

    def test_clwb_persists_line(self, machine):
        machine.execute(0, Store(0x2000, b"D" * 8))
        machine.execute(0, CLWB(0x2000))
        machine.execute(0, Fence())
        assert machine.nvram.peek(0x2000, 8) == b"D" * 8

    def test_fence_after_drain_is_cheap(self, machine):
        machine.execute(0, Store(0x2000, b"D" * 8))
        machine.execute(0, CLWB(0x2000))
        machine.execute(0, Fence())
        before = machine.cores[0].time
        machine.execute(0, Fence())
        assert machine.cores[0].time - before < 5.0


class TestTransactionsOps:
    def test_tx_ops_count_stats(self, hw_machine):
        hw_machine.execute(0, TxBegin(txid=1, tid=0, overhead_instrs=4))
        result = hw_machine.execute(0, TxCommit(txid=1, tid=0, overhead_instrs=2))
        assert hw_machine.stats.transactions_started == 1
        assert hw_machine.stats.transactions_committed == 1
        assert hw_machine.cores[0].instret == 6
        assert result is not None  # hw commit returns durable time

    def test_non_pers_commit_returns_none(self, machine):
        machine.execute(0, TxBegin(txid=1, tid=0))
        assert machine.execute(0, TxCommit(txid=1, tid=0)) is None

    def test_unknown_op_rejected(self, machine):
        class Bogus:
            pass

        with pytest.raises(SimulationError):
            machine.cores[0].execute(Bogus())
