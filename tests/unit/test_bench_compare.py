"""Bench compare semantics: tolerances, suite sets, schema, exit codes."""

import json

import pytest

from repro.bench import (
    SCHEMA,
    BenchRunResult,
    BenchSchemaError,
    SuiteResult,
    compare_results,
    load_baseline,
    result_to_doc,
    write_baseline,
)
from repro.bench.baseline import doc_to_result

HOST = {
    "python": "3.12.0",
    "implementation": "CPython",
    "system": "Linux",
    "machine": "x86_64",
    "cpus": 4,
}
OTHER_HOST = dict(HOST, python="3.9.1")


def make_result(
    counters=None,
    wall=1.0,
    name="probe",
    host=HOST,
    mode="quick",
    drift=False,
    extra_suites=(),
):
    result = BenchRunResult(mode=mode, repeats=3, host=dict(host))
    result.suites.append(
        SuiteResult(
            name=name,
            description="d",
            counters=dict(counters if counters is not None else {"cycles": 100.0, "events": 7}),
            wall_seconds=wall,
            wall_all=[wall, wall + 0.01],
            counter_drift=drift,
        )
    )
    result.suites.extend(extra_suites)
    return result


class TestCounterTolerance:
    def test_identical_passes(self):
        report = compare_results(make_result(), make_result())
        assert report.passed
        assert report.regressions == []

    @pytest.mark.parametrize("delta", [1, -1])
    def test_any_counter_change_fails_both_directions(self, delta):
        current = make_result(counters={"cycles": 100.0, "events": 7 + delta})
        report = compare_results(make_result(), current)
        assert not report.passed
        [diff] = report.regressions
        assert (diff.suite, diff.metric, diff.kind) == ("probe", "events", "counter")
        assert report.regressing_suites == ["probe"]

    def test_float_counter_exactness(self):
        current = make_result(counters={"cycles": 100.0 + 1e-9, "events": 7})
        assert not compare_results(make_result(), current).passed

    def test_disappeared_counter_fails(self):
        current = make_result(counters={"cycles": 100.0})
        report = compare_results(make_result(), current)
        assert not report.passed
        assert report.regressions[0].note == "counter disappeared"

    def test_new_counter_is_informational(self):
        current = make_result(counters={"cycles": 100.0, "events": 7, "extra": 1})
        report = compare_results(make_result(), current)
        assert report.passed
        assert any("new counter" in d.note for d in report.diffs)


class TestWallTolerance:
    def test_at_exact_tolerance_boundary_passes(self):
        current = make_result(wall=1.25)
        report = compare_results(make_result(), current, wall_tolerance=0.25)
        assert report.passed

    def test_just_over_tolerance_fails_on_matching_host(self):
        current = make_result(wall=1.26)
        report = compare_results(make_result(), current, wall_tolerance=0.25)
        assert not report.passed
        [diff] = report.regressions
        assert diff.kind == "wall"

    def test_speedup_never_fails(self):
        report = compare_results(make_result(), make_result(wall=0.1))
        assert report.passed

    def test_host_mismatch_demotes_wall_to_informational(self):
        current = make_result(wall=9.0, host=OTHER_HOST)
        report = compare_results(make_result(), current)
        assert report.passed
        assert not report.wall_gated
        assert any(d.kind == "wall" and d.regressed for d in report.diffs)

    def test_gate_wall_false_demotes_wall(self):
        current = make_result(wall=9.0)
        report = compare_results(make_result(), current, gate_wall=False)
        assert report.passed

    def test_counter_drift_still_gates_on_foreign_host(self):
        current = make_result(
            counters={"cycles": 101.0, "events": 7}, host=OTHER_HOST
        )
        assert not compare_results(make_result(), current).passed


class TestSuiteSets:
    def test_missing_suite_fails(self):
        baseline = make_result(
            extra_suites=[SuiteResult("gone", "d", {"n": 1}, 0.5, [0.5])]
        )
        report = compare_results(baseline, make_result())
        assert not report.passed
        [diff] = report.regressions
        assert (diff.suite, diff.kind) == ("gone", "suite")
        assert "missing" in diff.note

    def test_added_suite_is_informational(self):
        current = make_result(
            extra_suites=[SuiteResult("fresh", "d", {"n": 1}, 0.5, [0.5])]
        )
        report = compare_results(make_result(), current)
        assert report.passed
        assert any(d.suite == "fresh" and "new suite" in d.note for d in report.diffs)

    def test_mode_mismatch_fails_without_counter_noise(self):
        current = make_result(mode="full")
        report = compare_results(make_result(), current)
        assert not report.passed
        [diff] = report.regressions
        assert diff.metric == "mode"
        assert "like with like" in diff.note

    def test_intra_run_counter_drift_fails(self):
        report = compare_results(make_result(), make_result(drift=True))
        assert not report.passed
        assert report.regressions[0].kind == "determinism"


class TestSchemaAndRoundTrip:
    def test_round_trip_preserves_counters_exactly(self, tmp_path):
        result = make_result(counters={"cycles": 12345.6789012345, "n": 3})
        path = write_baseline(tmp_path / "b.json", result)
        loaded = load_baseline(path)
        assert loaded.suites[0].counters == result.suites[0].counters
        assert compare_results(result, loaded).counter_drift == []

    def test_schema_mismatch_raises(self, tmp_path):
        doc = result_to_doc(make_result())
        doc["schema"] = "repro-bench/v0"
        path = tmp_path / "old.json"
        path.write_text(json.dumps(doc))
        with pytest.raises(BenchSchemaError):
            load_baseline(path)

    def test_missing_schema_raises(self, tmp_path):
        path = tmp_path / "none.json"
        path.write_text("{}")
        with pytest.raises(BenchSchemaError):
            load_baseline(path)

    def test_doc_schema_constant(self):
        assert result_to_doc(make_result())["schema"] == SCHEMA == "repro-bench/v1"

    def test_doc_to_result_tolerates_sparse_entries(self):
        result = doc_to_result({"suites": {"x": {}}})
        assert result.suites[0].name == "x"
        assert result.suites[0].counters == {}


class TestRendering:
    def test_markdown_names_regressing_suite_and_status(self):
        current = make_result(counters={"cycles": 100.0, "events": 8})
        report = compare_results(make_result(), current)
        md = report.render_markdown()
        assert "REGRESSION" in md and "probe" in md and "events" in md

    def test_markdown_pass_status(self):
        md = compare_results(make_result(), make_result()).render_markdown()
        assert "PASS" in md

    def test_terminal_render_lists_wall_rows(self):
        text = compare_results(make_result(), make_result()).render()
        assert "no regressions" in text and "wall probe" in text
