"""Unit tests for repro.sim.cache."""

import pytest

from repro.errors import SimulationError
from repro.sim.cache import SetAssociativeCache
from repro.sim.config import CacheConfig


@pytest.fixture
def cache():
    # 4 sets x 2 ways of 64B lines.
    return SetAssociativeCache(CacheConfig(size_bytes=512, ways=2), "test")


LINE = 64


def addr_for(set_index: int, tag: int, num_sets: int = 4) -> int:
    return (tag * num_sets + set_index) * LINE


class TestLookupInsert:
    def test_miss_on_empty(self, cache):
        assert cache.lookup(0) is None

    def test_insert_then_lookup(self, cache):
        cache.insert(0, bytes(64), now=0.0)
        line = cache.lookup(0)
        assert line is not None
        assert line.addr == 0

    def test_lookup_any_offset_in_line(self, cache):
        cache.insert(0, bytes(64), now=0.0)
        assert cache.lookup(63) is not None
        assert cache.lookup(64) is None

    def test_duplicate_insert_raises(self, cache):
        cache.insert(0, bytes(64), now=0.0)
        with pytest.raises(SimulationError):
            cache.insert(0, bytes(64), now=1.0)

    def test_wrong_size_insert_raises(self, cache):
        with pytest.raises(SimulationError):
            cache.insert(0, bytes(32), now=0.0)

    def test_data_preserved(self, cache):
        payload = bytes(range(64))
        cache.insert(0, payload, now=0.0)
        assert bytes(cache.lookup(0).data) == payload


class TestEviction:
    def test_no_eviction_until_full(self, cache):
        assert cache.insert(addr_for(0, 0), bytes(64), 0.0) is None
        assert cache.insert(addr_for(0, 1), bytes(64), 1.0) is None

    def test_lru_victim(self, cache):
        cache.insert(addr_for(0, 0), bytes(64), 0.0)
        cache.insert(addr_for(0, 1), bytes(64), 1.0)
        cache.touch(cache.lookup(addr_for(0, 0)), 2.0)  # refresh tag 0
        victim = cache.insert(addr_for(0, 2), bytes(64), 3.0)
        assert victim is not None
        assert victim.addr == addr_for(0, 1)

    def test_victim_carries_dirty_state(self, cache):
        cache.insert(addr_for(0, 0), bytes(64), 0.0)
        cache.lookup(addr_for(0, 0)).dirty = True
        cache.insert(addr_for(0, 1), bytes(64), 1.0)
        victim = cache.insert(addr_for(0, 2), bytes(64), 0.5)
        assert victim.dirty is True

    def test_victim_carries_log_release(self, cache):
        cache.insert(addr_for(0, 0), bytes(64), 0.0)
        cache.lookup(addr_for(0, 0)).log_release = 123.0
        cache.insert(addr_for(0, 1), bytes(64), 1.0)
        victim = cache.insert(addr_for(0, 2), bytes(64), 0.5)
        assert victim.log_release == 123.0

    def test_sets_are_independent(self, cache):
        for tag in range(3):
            cache.insert(addr_for(1, tag), bytes(64), float(tag))
        assert cache.insert(addr_for(2, 0), bytes(64), 5.0) is None


class TestInvalidate:
    def test_invalidate_removes(self, cache):
        cache.insert(0, bytes(64), 0.0)
        evicted = cache.invalidate(0)
        assert evicted is not None
        assert cache.lookup(0) is None

    def test_invalidate_missing_returns_none(self, cache):
        assert cache.invalidate(0) is None

    def test_drop_all(self, cache):
        cache.insert(addr_for(0, 0), bytes(64), 0.0)
        cache.insert(addr_for(1, 0), bytes(64), 0.0)
        cache.drop_all()
        assert cache.occupancy == 0


class TestIteration:
    def test_iter_lines_counts(self, cache):
        for set_index in range(4):
            cache.insert(addr_for(set_index, 0), bytes(64), 0.0)
        assert len(list(cache.iter_lines())) == 4
        assert cache.occupancy == 4

    def test_dirty_count(self, cache):
        cache.insert(addr_for(0, 0), bytes(64), 0.0)
        cache.insert(addr_for(1, 0), bytes(64), 0.0)
        cache.lookup(addr_for(0, 0)).dirty = True
        assert cache.dirty_count() == 1

    def test_new_line_state(self, cache):
        cache.insert(0, bytes(64), 7.5)
        line = cache.lookup(0)
        assert line.dirty is False
        assert line.fwb is False
        assert line.last_use == 7.5
        assert line.log_release == 0.0
