"""Tests for the ``python -m repro`` command-line interface."""

import pytest

from repro.__main__ import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_figure_choices(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["figure", "12"])

    def test_compare_defaults(self):
        args = build_parser().parse_args(["compare"])
        assert args.benchmark == "hash"
        assert args.threads == 1

    def test_faults_defaults(self):
        args = build_parser().parse_args(["faults"])
        assert args.policy == "guaranteed"
        assert args.workload == "hash"
        assert args.points == 60
        assert args.seed == 7

    def test_cell_timeout_flag(self):
        args = build_parser().parse_args(["figure", "6", "--cell-timeout", "2.5"])
        assert args.cell_timeout == 2.5

    def test_ablate_defaults(self):
        args = build_parser().parse_args(["ablate"])
        assert args.specs is None
        assert args.backends == "hw,sw"
        assert args.contents == "undo,redo,undo+redo"
        assert args.writebacks == "none,clwb,fwb"
        assert args.commits == "fenced"
        assert args.benchmarks == "hash"
        assert not args.no_psan
        assert args.jobs is None  # auto: sized to the grid and the host
        assert not args.chart


class TestCommands:
    def test_tables(self, capsys):
        assert main(["tables"]) == 0
        out = capsys.readouterr().out
        assert "Table I" in out and "Table II" in out and "Table III" in out

    def test_lifetime(self, capsys):
        assert main(["lifetime"]) == 0
        out = capsys.readouterr().out
        assert "15.2 days" in out

    def test_figure_11b(self, capsys):
        assert main(["figure", "11b"]) == 0
        out = capsys.readouterr().out
        assert "FWB frequency" in out

    def test_figure_quick_sweep(self, capsys):
        assert main(["figure", "6", "--quick"]) == 0
        out = capsys.readouterr().out
        assert "unsafe-base" in out
        assert "fwb gain" in out

    def test_ablate_specs_smoke(self, capsys):
        code = main(
            [
                "ablate",
                "--specs",
                "hwl,fwb,hw+undo+clwb,sw+redo+fwb",
                "--txns",
                "20",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "design-space ablation: 4 design(s)" in out
        assert "hw+undo+clwb" in out
        # Guarantee column derives from the mechanisms.
        assert " yes " in out and " no " in out

    def test_ablate_grid_smoke(self, capsys):
        code = main(
            [
                "ablate",
                "--backends",
                "hw",
                "--contents",
                "undo+redo",
                "--writebacks",
                "clwb,fwb",
                "--txns",
                "20",
                "--no-psan",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "2 design(s)" in out
        assert "hw+undo+redo+clwb" in out and "hw+undo+redo+fwb" in out

    def test_ablate_chart(self, capsys):
        code = main(
            [
                "ablate",
                "--specs",
                "hwl,fwb",
                "--txns",
                "10",
                "--no-psan",
                "--jobs",
                "1",
                "--chart",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "ablation throughput" in out
        assert "█" in out

    def test_ablate_empty_grid_errors(self, capsys):
        code = main(["ablate", "--backends", "none", "--contents", "undo"])
        assert code == 2
        assert "no valid design" in capsys.readouterr().err

    def test_ablate_bad_spec_errors(self):
        with pytest.raises(ValueError, match="did you mean"):
            main(["ablate", "--specs", "hlw"])

    def test_faults_smoke(self, capsys):
        assert (
            main(
                [
                    "faults",
                    "--policy",
                    "fwb",
                    "--points",
                    "10",
                    "--txns",
                    "16",
                    "--verbose",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "campaign PASSED" in out
        assert "fwb" in out
        assert "violation(s)" in out  # the --verbose per-policy line
