"""Unit tests for repro.sim.memctrl."""

import pytest

from repro.sim.config import MemCtrlConfig, NVDimmConfig
from repro.sim.energy import EnergyModel
from repro.sim.config import EnergyConfig
from repro.sim.memctrl import MemoryController
from repro.sim.nvram import NVRAM
from repro.sim.stats import MachineStats


def make_mc(**nvram_overrides):
    stats = MachineStats()
    nvram_config = NVDimmConfig(size_bytes=1024 * 1024, **nvram_overrides)
    nvram = NVRAM(nvram_config)
    energy = EnergyModel(EnergyConfig(), stats)
    mc = MemoryController(MemCtrlConfig(), nvram_config, nvram, energy, stats, 2.5)
    return mc, nvram, stats


class TestReads:
    def test_read_returns_data(self):
        mc, nvram, _ = make_mc()
        nvram.poke(64, b"payload!")
        finish, data = mc.read(64, 8, 0.0)
        assert data == b"payload!"
        assert finish > 0

    def test_first_read_is_row_conflict(self):
        mc, _, stats = make_mc()
        mc.read(0, 64, 0.0)
        assert stats.nvram_row_conflicts == 1

    def test_repeat_read_is_row_hit(self):
        mc, _, stats = make_mc()
        mc.read(0, 64, 0.0)
        mc.read(0, 64, 1000.0)
        assert stats.nvram_row_hits == 1

    def test_row_hit_is_faster(self):
        mc, _, _ = make_mc()
        finish_conflict, _ = mc.read(0, 64, 0.0)
        finish_hit, _ = mc.read(0, 64, 1000.0)
        assert finish_hit - 1000.0 < finish_conflict - 0.0

    def test_same_bank_reads_serialize(self):
        mc, nvram, _ = make_mc()
        addr = 0
        f1, _ = mc.read(addr, 64, 0.0)
        f2, _ = mc.read(addr + 64 * 8, 64, 0.0)  # same bank, next stripe
        assert f2 > f1

    def test_different_banks_overlap(self):
        mc, _, _ = make_mc(bus_cycles_per_transfer=1.0)
        f1, _ = mc.read(0, 64, 0.0)
        f2, _ = mc.read(64, 64, 0.0)  # adjacent line = different bank
        # Bank-parallel: the second read does not wait for the first.
        assert f2 - f1 < 50


class TestWrites:
    def test_write_applies_functionally(self):
        mc, nvram, _ = make_mc()
        mc.write(128, b"ABCDEFGH", 0.0)
        assert nvram.peek(128, 8) == b"ABCDEFGH"

    def test_write_is_posted(self):
        mc, _, _ = make_mc()
        ticket = mc.write(0, bytes(64), 0.0)
        assert ticket.stall == 0.0
        assert ticket.completion > 0

    def test_min_completion_clamps(self):
        mc, _, _ = make_mc()
        ticket = mc.write(0, bytes(64), 0.0, min_completion=99999.0)
        assert ticket.completion == 99999.0

    def test_write_queue_backpressure(self):
        mc, _, stats = make_mc()
        # Saturate the 64-entry queue with same-bank writes at time 0.
        for i in range(70):
            mc.write(i * 64 * 8, bytes(64), 0.0)
        assert stats.write_queue_stall_cycles > 0

    def test_acceptance_before_completion(self):
        mc, _, _ = make_mc()
        ticket = mc.write(0, bytes(64), 0.0)
        assert ticket.accepted <= ticket.completion

    def test_infinite_bandwidth_mode(self):
        mc, _, stats = make_mc(infinite_write_bandwidth=True)
        for i in range(200):
            ticket = mc.write(i * 64, bytes(64), 0.0)
            assert ticket.stall == 0.0
        assert stats.write_queue_stall_cycles == 0.0


class TestReadPriority:
    def test_read_not_blocked_by_write_backlog(self):
        mc, _, _ = make_mc(bus_cycles_per_transfer=0.0 + 1.0)
        # Pile writes onto bank 0.
        for i in range(20):
            mc.write(i * 64 * 8, bytes(64), 0.0)
        write_backlog = mc.nvram.bank_write_free[0]
        finish, _ = mc.read(64 * 8 * 100, 64, 0.0)  # bank 0 read
        # Read waits at most ~one in-service write, not the whole backlog.
        assert finish < write_backlog

    def test_write_after_read_waits(self):
        mc, _, _ = make_mc()
        read_finish, _ = mc.read(0, 64, 0.0)
        ticket = mc.write(64 * 8, bytes(64), 0.0)  # same bank 0
        assert ticket.completion > read_finish


class TestBus:
    def test_bus_serializes_transfers(self):
        mc, _, _ = make_mc(bus_cycles_per_transfer=12.0)
        tickets = [mc.write(i * 64, bytes(64), 0.0) for i in range(4)]
        accepts = [t.accepted for t in tickets]
        for earlier, later in zip(accepts, accepts[1:]):
            assert later >= earlier + 12.0


class TestRetire:
    def test_retire_frees_slots(self):
        mc, _, _ = make_mc()
        ticket = mc.write(0, bytes(64), 0.0)
        assert mc.write_queue_occupancy == 1
        mc.retire(ticket.completion + 1)
        assert mc.write_queue_occupancy == 0
