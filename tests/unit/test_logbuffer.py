"""Unit tests for repro.core.logbuffer (the volatile log buffer)."""

import pytest

from repro.core.logbuffer import LogBuffer
from repro.sim.config import EnergyConfig, MemCtrlConfig, NVDimmConfig
from repro.sim.energy import EnergyModel
from repro.sim.memctrl import MemoryController
from repro.sim.nvram import NVRAM
from repro.sim.stats import MachineStats


def make_buffer(depth, **nvram_overrides):
    stats = MachineStats()
    nvram_config = NVDimmConfig(size_bytes=1024 * 1024, **nvram_overrides)
    nvram = NVRAM(nvram_config)
    mc = MemoryController(
        MemCtrlConfig(), nvram_config, nvram, EnergyModel(EnergyConfig(), stats), stats, 2.5
    )
    return LogBuffer(depth, mc, stats), nvram, stats


class TestUnbuffered:
    def test_record_reaches_nvram(self):
        buf, nvram, _ = make_buffer(0)
        buf.push(0x1000, b"R" * 64, 0.0)
        assert nvram.peek(0x1000, 1) == b"R"

    def test_store_waits_for_bus(self):
        buf, _, stats = make_buffer(0, bus_cycles_per_transfer=12.0)
        total = 0.0
        for i in range(6):
            stall, _ = buf.push(0x1000 + i * 64, bytes(64), 0.0)
            total += stall
        assert total > 0
        assert stats.log_buffer_stall_cycles > 0


class TestBuffered:
    def test_no_stall_when_space(self):
        buf, _, _ = make_buffer(8)
        stall, completion = buf.push(0x1000, bytes(64), 0.0)
        assert stall == 0.0
        assert completion > 0.0

    def test_full_buffer_stalls(self):
        buf, _, stats = make_buffer(2, bus_cycles_per_transfer=50.0)
        stalls = [buf.push(0x1000 + i * 64, bytes(64), 0.0)[0] for i in range(6)]
        assert any(s > 0 for s in stalls)
        assert stats.log_buffer_stall_cycles > 0

    def test_deeper_buffer_stalls_less(self):
        shallow, _, _ = make_buffer(2, bus_cycles_per_transfer=50.0)
        deep, _, _ = make_buffer(16, bus_cycles_per_transfer=50.0)
        shallow_stall = sum(
            shallow.push(0x1000 + i * 64, bytes(64), 0.0)[0] for i in range(10)
        )
        deep_stall = sum(
            deep.push(0x1000 + i * 64, bytes(64), 0.0)[0] for i in range(10)
        )
        assert deep_stall < shallow_stall


class TestOrdering:
    @pytest.mark.parametrize("depth", [0, 4, 15])
    def test_completions_monotone(self, depth):
        """Log updates must become durable in issue order (Section III-D)."""
        buf, _, _ = make_buffer(depth)
        completions = []
        now = 0.0
        for i in range(20):
            stall, completion = buf.push(0x1000 + (i % 8) * 64, bytes(64), now)
            completions.append(completion)
            now += 5.0 + stall
        assert completions == sorted(completions)

    def test_stats_count_records(self):
        buf, _, stats = make_buffer(8)
        for i in range(5):
            buf.push(0x1000 + i * 64, bytes(64), 0.0)
        assert stats.log_records == 5
        assert stats.log_bytes == 5 * 64
