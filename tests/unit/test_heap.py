"""Unit tests for repro.txn.heap."""

import pytest

from repro.errors import AddressError
from repro.txn.heap import PersistentHeap


@pytest.fixture
def heap():
    return PersistentHeap(base=0x1000, limit=0x2000)


class TestAlloc:
    def test_first_alloc_at_base(self, heap):
        assert heap.alloc(8) == 0x1000

    def test_allocations_disjoint(self, heap):
        a = heap.alloc(24)
        b = heap.alloc(24)
        assert b >= a + 24

    def test_alignment(self, heap):
        heap.alloc(3)
        assert heap.alloc(8) % 8 == 0

    def test_zero_size_rejected(self, heap):
        with pytest.raises(AddressError):
            heap.alloc(0)

    def test_exhaustion(self, heap):
        heap.alloc(0x0F00)
        with pytest.raises(AddressError):
            heap.alloc(0x200)

    def test_accounting(self, heap):
        heap.alloc(16)
        assert heap.allocated_bytes == 16
        assert heap.used_bytes == 16
        assert heap.remaining_bytes == 0x1000 - 16


class TestFree:
    def test_free_then_realloc_reuses(self, heap):
        addr = heap.alloc(32)
        heap.free(addr, 32)
        assert heap.alloc(32) == addr

    def test_free_lists_are_size_classed(self, heap):
        addr = heap.alloc(32)
        heap.free(addr, 32)
        other = heap.alloc(64)
        assert other != addr

    def test_free_outside_heap_rejected(self, heap):
        with pytest.raises(AddressError):
            heap.free(0x100, 8)

    def test_allocated_bytes_decrease(self, heap):
        addr = heap.alloc(16)
        heap.free(addr, 16)
        assert heap.allocated_bytes == 0


class TestSnapshot:
    def test_snapshot_restore_roundtrip(self, heap):
        a = heap.alloc(16)
        heap.free(a, 16)
        state = heap.snapshot()
        heap.alloc(16)
        heap.alloc(64)
        heap.restore(state)
        assert heap.alloc(16) == a  # free list restored

    def test_snapshot_is_deep(self, heap):
        addr = heap.alloc(16)
        heap.free(addr, 16)
        state = heap.snapshot()
        heap.alloc(16)  # consumes the free list of the live heap
        _cursor, free = state
        assert free[16] == [addr]  # snapshot unaffected

    def test_empty_range_rejected(self):
        with pytest.raises(AddressError):
            PersistentHeap(0x1000, 0x1000)
