"""Unit tests for repro.core.registers (special registers)."""

import pytest

from repro.core.registers import PHYSICAL_TXID_SPACE, SpecialRegisters
from repro.errors import LogError, TransactionError


class TestPhysicalTxids:
    def test_acquire_assigns_physical_id(self):
        regs = SpecialRegisters()
        physical = regs.acquire_txid(1000)
        assert 0 <= physical < PHYSICAL_TXID_SPACE
        assert regs.physical_txid(1000) == physical

    def test_double_acquire_rejected(self):
        regs = SpecialRegisters()
        regs.acquire_txid(1)
        with pytest.raises(TransactionError):
            regs.acquire_txid(1)

    def test_release_recycles(self):
        regs = SpecialRegisters()
        first = regs.acquire_txid(1)
        regs.release_txid(1)
        second = regs.acquire_txid(2)
        assert first == second

    def test_release_unknown_rejected(self):
        with pytest.raises(TransactionError):
            SpecialRegisters().release_txid(5)

    def test_physical_of_inactive_rejected(self):
        with pytest.raises(TransactionError):
            SpecialRegisters().physical_txid(5)

    def test_capacity_is_256(self):
        regs = SpecialRegisters()
        for user in range(PHYSICAL_TXID_SPACE):
            regs.acquire_txid(user)
        with pytest.raises(TransactionError):
            regs.acquire_txid(9999)

    def test_active_count(self):
        regs = SpecialRegisters()
        regs.acquire_txid(1)
        regs.acquire_txid(2)
        regs.release_txid(1)
        assert regs.active_count == 1

    def test_ids_unique_while_active(self):
        regs = SpecialRegisters()
        ids = {regs.acquire_txid(user) for user in range(100)}
        assert len(ids) == 100


class TestLogPointers:
    def test_set_pointers(self):
        regs = SpecialRegisters()
        regs.set_log_pointers(3, 7)
        assert (regs.log_head, regs.log_tail) == (3, 7)

    def test_negative_rejected(self):
        with pytest.raises(LogError):
            SpecialRegisters().set_log_pointers(-1, 0)

    def test_grow_regions(self):
        regs = SpecialRegisters()
        regs.add_grow_region(0x1000, 4096)
        assert regs.grow_regions == [(0x1000, 4096)]
