"""Tests for the determinism/accounting lint."""

import os
import textwrap

from repro.sanitizer.lint import (
    LintFinding,
    declared_stats_fields,
    lint_file,
    lint_paths,
    registered_event_kinds,
)

STATS = frozenset({"instructions", "fwb_writebacks"})
KINDS = frozenset({"tx_begin", "store"})


def write(tmp_path, relpath, body):
    path = tmp_path / relpath
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(textwrap.dedent(body))
    return str(path)


def run(tmp_path, relpath, body):
    return lint_file(write(tmp_path, relpath, body), STATS, KINDS)


class TestWallClock:
    def test_random_import_in_sim_fires(self, tmp_path):
        findings = run(tmp_path, "repro/sim/x.py", "import random\n")
        assert [f.rule for f in findings] == ["wall-clock"]

    def test_from_import_fires(self, tmp_path):
        findings = run(tmp_path, "repro/core/x.py", "from time import sleep\n")
        assert [f.rule for f in findings] == ["wall-clock"]

    def test_harness_layer_is_exempt(self, tmp_path):
        # Process pools and retry backoff legitimately use real time.
        assert run(tmp_path, "repro/harness/x.py", "import time\n") == []

    def test_suppression_comment(self, tmp_path):
        body = "import random  # lint: allow(wall-clock) seeded explicitly\n"
        assert run(tmp_path, "repro/workloads/x.py", body) == []


class TestSchedEntropy:
    def test_random_import_in_sched_fires(self, tmp_path):
        findings = run(tmp_path, "repro/sched/x.py", "import random\n")
        assert [f.rule for f in findings] == ["sched-entropy"]

    def test_time_from_import_fires(self, tmp_path):
        findings = run(
            tmp_path, "repro/sched/x.py", "from time import monotonic\n"
        )
        assert [f.rule for f in findings] == ["sched-entropy"]

    def test_unseeded_rng_constructor_fires(self, tmp_path):
        body = "def f(Random):\n    return Random()\n"
        findings = run(tmp_path, "repro/sched/x.py", body)
        assert [f.rule for f in findings] == ["sched-entropy"]
        assert "unseeded" in findings[0].message

    def test_seeded_rng_constructor_is_clean(self, tmp_path):
        body = "def f(Random):\n    return Random(42)\n"
        assert run(tmp_path, "repro/sched/x.py", body) == []

    def test_thread_rng_import_is_clean(self, tmp_path):
        body = "from ..workloads.rng import thread_rng\n"
        assert run(tmp_path, "repro/sched/x.py", body) == []

    def test_non_sched_paths_exempt(self, tmp_path):
        # The harness layer may use real time; sched-entropy must not
        # reach outside repro/sched.
        assert run(tmp_path, "repro/harness/x.py", "import time\n") == []


class TestStatsCounter:
    def test_undeclared_counter_fires(self, tmp_path):
        body = "def f(m):\n    m.stats.typo_counter += 1\n"
        findings = run(tmp_path, "x.py", body)
        assert [f.rule for f in findings] == ["stats-counter"]
        assert "typo_counter" in findings[0].message

    def test_declared_counter_is_clean(self, tmp_path):
        body = "def f(m):\n    m.stats.instructions += 1\n"
        assert run(tmp_path, "x.py", body) == []

    def test_private_stats_attribute_checked_too(self, tmp_path):
        body = "def f(self):\n    self._stats.ghost = 3\n"
        assert [f.rule for f in run(tmp_path, "x.py", body)] == ["stats-counter"]

    def test_plain_attribute_write_is_not_a_stats_write(self, tmp_path):
        # `stats.x = ...` where `stats` is a bare name is a local object,
        # not a machine-stats attribute chain.
        body = "def f(stats, r):\n    stats.psan_report = r\n"
        assert run(tmp_path, "x.py", body) == []


class TestFloatEq:
    def test_equality_on_time_name_fires(self, tmp_path):
        body = "def f(a, completion_time):\n    return a == completion_time\n"
        assert [f.rule for f in run(tmp_path, "x.py", body)] == ["float-eq"]

    def test_inequality_on_attribute_fires(self, tmp_path):
        body = "def f(a, b):\n    return a.completion != b\n"
        assert [f.rule for f in run(tmp_path, "x.py", body)] == ["float-eq"]

    def test_none_sentinel_is_exempt(self, tmp_path):
        body = "def f(deadline):\n    return deadline == None\n"
        assert run(tmp_path, "x.py", body) == []

    def test_ordering_comparisons_are_fine(self, tmp_path):
        body = "def f(a, deadline):\n    return a <= deadline\n"
        assert run(tmp_path, "x.py", body) == []

    def test_non_time_names_are_fine(self, tmp_path):
        body = "def f(kind, other):\n    return kind == other\n"
        assert run(tmp_path, "x.py", body) == []


class TestEventKind:
    def test_unregistered_kind_fires(self, tmp_path):
        body = "def f(t):\n    t.emit(1.0, 'tx_bgin', 0)\n"
        findings = run(tmp_path, "x.py", body)
        assert [f.rule for f in findings] == ["event-kind"]
        assert "tx_bgin" in findings[0].message

    def test_registered_kind_is_clean(self, tmp_path):
        body = "def f(t):\n    t.emit(1.0, 'store', 0)\n"
        assert run(tmp_path, "x.py", body) == []

    def test_non_emit_calls_ignored(self, tmp_path):
        body = "def f(t):\n    t.send(1.0, 'bogus', 0)\n"
        assert run(tmp_path, "x.py", body) == []


class TestRegistries:
    def test_declared_stats_fields_parse_real_source(self):
        fields = declared_stats_fields()
        assert "instructions" in fields
        assert "fwb_writebacks" in fields

    def test_registered_event_kinds_parse_real_source(self):
        kinds = registered_event_kinds()
        assert {"tx_begin", "tx_commit", "store", "log_place",
                "nvram_write"} <= kinds

    def test_repo_source_tree_is_clean(self):
        # The CI gate: the shipped tree must lint clean.
        src = os.path.join(
            os.path.dirname(os.path.dirname(os.path.dirname(
                os.path.abspath(__file__)))),
            "src", "repro",
        )
        findings = lint_paths([src])
        assert findings == [], "\n".join(f.render() for f in findings)


class TestPlumbing:
    def test_lint_paths_walks_directories(self, tmp_path):
        write(tmp_path, "repro/sim/a.py", "import random\n")
        write(tmp_path, "repro/sim/b.py", "import secrets\n")
        findings = lint_paths([str(tmp_path)])
        assert len(findings) == 2
        assert findings == sorted(
            findings, key=lambda f: (f.path, f.line, f.rule)
        )

    def test_finding_render_and_dict(self):
        finding = LintFinding("float-eq", "x.py", 3, "msg")
        assert finding.render() == "x.py:3: [float-eq] msg"
        assert finding.to_dict() == {
            "rule": "float-eq", "path": "x.py", "line": 3, "message": "msg",
        }


class TestPassFramework:
    def test_builtin_passes_registered(self):
        from repro.sanitizer.lint import PASSES

        assert set(PASSES) >= {
            "wall-clock", "stats-counter", "float-eq", "event-kind",
            "sched-entropy",
        }
        for rule, cls in PASSES.items():
            assert cls.rule == rule
            assert cls.description

    def test_custom_pass_participates(self, tmp_path):
        import ast

        from repro.sanitizer.lint import PASSES, LintPass, register_pass

        @register_pass
        class NoGlobalsPass(LintPass):
            rule = "no-globals"
            description = "test-only: reject the global statement"

            def visit_Global(self, node):
                self.add(node, "global statement")

        try:
            findings = run(
                tmp_path, "x.py", "def f():\n    global g\n    g = 1\n"
            )
            assert [f.rule for f in findings] == ["no-globals"]
        finally:
            PASSES.pop("no-globals")


class TestSuppressionAudit:
    def test_stale_suppression_reported(self, tmp_path):
        body = "x = 1  # lint: allow(float-eq) was a time compare once\n"
        findings = run(tmp_path, "x.py", body)
        assert [f.rule for f in findings] == ["stale-suppression"]
        assert "suppresses nothing" in findings[0].message

    def test_live_suppression_is_not_stale(self, tmp_path):
        body = "import random  # lint: allow(wall-clock) seeded explicitly\n"
        assert run(tmp_path, "repro/sim/x.py", body) == []

    def test_unknown_rule_reported(self, tmp_path):
        findings = run(tmp_path, "x.py", "x = 1  # lint: allow(bogus-rule)\n")
        assert [f.rule for f in findings] == ["stale-suppression"]
        assert "names no registered lint pass" in findings[0].message

    def test_inactive_rule_suppression_skipped(self, tmp_path):
        # wall-clock does not run outside the deterministic packages,
        # so the mark's staleness is unknowable there — not a finding.
        body = "import time  # lint: allow(wall-clock)\n"
        assert run(tmp_path, "repro/harness/x.py", body) == []

    def test_docstrings_are_not_audited(self, tmp_path):
        body = '"""Mentions lint: allow(float-eq) in prose only."""\nx = 1\n'
        assert run(tmp_path, "x.py", body) == []

    def test_audit_can_be_disabled(self, tmp_path):
        from repro.sanitizer.lint import lint_file

        path = write(tmp_path, "x.py", "x = 1  # lint: allow(float-eq)\n")
        assert lint_file(path, STATS, KINDS, audit_suppressions=False) == []
