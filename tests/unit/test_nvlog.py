"""Unit tests for repro.core.nvlog (circular log placement)."""

import pytest

from repro.core.logrecord import LogRecord, RecordKind
from repro.core.nvlog import CircularLog
from repro.errors import LogError


def data(addr=0x1000):
    return LogRecord(RecordKind.DATA, 1, 0, addr, undo=b"A" * 8, redo=b"B" * 8)


@pytest.fixture
def log():
    return CircularLog(base=0x10000, num_entries=4, entry_size=64)


class TestPlacement:
    def test_sequential_addresses(self, log):
        addrs = [log.place(data()).addr for _ in range(4)]
        assert addrs == [0x10000, 0x10040, 0x10080, 0x100C0]

    def test_wrap_returns_to_base(self, log):
        for _ in range(4):
            log.place(data())
        assert log.place(data()).addr == 0x10000
        assert log.wrapped

    def test_first_pass_parity_is_one(self, log):
        placed = log.place(data())
        assert LogRecord.decode(placed.payload).torn == 1

    def test_parity_flips_on_wrap(self, log):
        for _ in range(4):
            log.place(data())
        placed = log.place(data())
        assert LogRecord.decode(placed.payload).torn == 0

    def test_parity_flips_again_on_second_wrap(self, log):
        for _ in range(8):
            log.place(data())
        placed = log.place(data())
        assert LogRecord.decode(placed.payload).torn == 1

    def test_appended_counter(self, log):
        for _ in range(6):
            log.place(data())
        assert log.appended == 6


class TestWrapProtection:
    def test_no_displacement_before_wrap(self, log):
        for _ in range(4):
            assert log.place(data()).displaced_line is None

    def test_displacement_reports_data_line(self, log):
        for i in range(4):
            log.place(data(addr=0x2000 + i * 64))
        placed = log.place(data(addr=0x9000))
        assert placed.displaced_line == 0x2000

    def test_displacement_line_aligned(self, log):
        log.place(data(addr=0x2013))
        for _ in range(3):
            log.place(LogRecord(RecordKind.COMMIT, 1, 0))
        placed = log.place(data())
        assert placed.displaced_line == 0x2000

    def test_begin_commit_displace_nothing_meaningful(self, log):
        for _ in range(4):
            log.place(LogRecord(RecordKind.BEGIN, 1, 0))
        placed = log.place(data())
        assert placed.displaced_line is None
        assert placed.displaced_kind == RecordKind.BEGIN


class TestGeometry:
    def test_entry_addr_bounds(self, log):
        with pytest.raises(LogError):
            log.entry_addr(4)
        with pytest.raises(LogError):
            log.entry_addr(-1)

    def test_size_and_end(self, log):
        assert log.size_bytes == 256
        assert log.end == 0x10100

    def test_zero_entries_rejected(self):
        with pytest.raises(LogError):
            CircularLog(0, 0, 64)


class TestTruncation:
    def test_truncate_advances_head(self, log):
        log.place(data())
        log.place(data())
        log.truncate(1)
        assert log.head == 1
        assert log.live_entries == 1

    def test_truncate_negative_rejected(self, log):
        with pytest.raises(LogError):
            log.truncate(-1)

    def test_live_entries_after_wrap(self, log):
        for _ in range(5):
            log.place(data())
        assert log.live_entries == 4
