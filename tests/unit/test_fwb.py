"""Unit tests for repro.core.fwb (force write-back mechanism)."""

import pytest

from repro.core.fwb import ForceWriteBack, required_scan_frequency, required_scan_interval
from repro import Machine, Policy, SystemConfig
from repro.sim.config import LoggingConfig
from tests.conftest import tiny_system


@pytest.fixture
def machine():
    return Machine(tiny_system(), Policy.FWB)


class TestScanFrequency:
    def test_paper_running_example(self):
        """A 64K-entry (4 MB) log needs a scan only every ~3M cycles."""
        interval = required_scan_interval(SystemConfig())
        assert 2e6 < interval < 4e6

    def test_interval_linear_in_log_size(self):
        small = SystemConfig(logging=LoggingConfig(log_entries=1024))
        large = SystemConfig(logging=LoggingConfig(log_entries=4096))
        ratio = required_scan_interval(large) / required_scan_interval(small)
        assert ratio == pytest.approx(4.0)

    def test_frequency_is_reciprocal(self):
        config = SystemConfig()
        assert required_scan_frequency(config) == pytest.approx(
            1.0 / required_scan_interval(config)
        )

    def test_override(self):
        config = SystemConfig(
            logging=LoggingConfig(fwb_scan_interval_override=12345)
        )
        assert required_scan_interval(config) == 12345.0

    def test_safety_factor(self):
        lax = SystemConfig(logging=LoggingConfig(fwb_safety_factor=1.0))
        tight = SystemConfig(logging=LoggingConfig(fwb_safety_factor=4.0))
        assert required_scan_interval(tight) == pytest.approx(
            required_scan_interval(lax) / 4.0
        )


class TestStateMachine:
    def test_first_scan_flags_dirty_lines(self, machine):
        machine.hierarchy.store(0, 0x2000, b"D" * 8, 0.0)
        machine.fwb.scan(0.0)
        line = machine.hierarchy.l1s[0].lookup(0x2000)
        assert line.fwb and line.dirty

    def test_second_scan_forces_writeback(self, machine):
        machine.hierarchy.store(0, 0x2000, b"D" * 8, 0.0)
        machine.fwb.scan(0.0)
        machine.fwb.scan(1.0)
        line = machine.hierarchy.l1s[0].lookup(0x2000)
        assert not line.dirty and not line.fwb
        assert machine.stats.fwb_writebacks >= 1

    def test_l1_fwb_pushes_into_llc(self, machine):
        machine.hierarchy.store(0, 0x2000, b"D" * 8, 0.0)
        machine.fwb.scan(0.0)
        machine.fwb.scan(1.0)
        llc_line = machine.hierarchy.llc.lookup(0x2000)
        assert llc_line.dirty
        assert bytes(llc_line.data[:8]) == b"D" * 8

    def test_data_reaches_nvram_after_llc_scans(self, machine):
        machine.hierarchy.store(0, 0x2000, b"P" * 8, 0.0)
        for t in range(4):
            machine.fwb.scan(float(t))
        assert machine.nvram.peek(0x2000, 8) == b"P" * 8

    def test_clean_lines_ignored(self, machine):
        machine.hierarchy.load(0, 0x2000, 8, 0.0)
        machine.fwb.scan(0.0)
        line = machine.hierarchy.l1s[0].lookup(0x2000)
        assert not line.fwb

    def test_dirty_cleared_elsewhere_resets_fwb(self, machine):
        machine.hierarchy.store(0, 0x2000, b"D" * 8, 0.0)
        machine.fwb.scan(0.0)
        machine.hierarchy.clwb(0, 0x2000, 1.0)  # clears dirty
        machine.fwb.scan(2.0)
        line = machine.hierarchy.l1s[0].lookup(0x2000)
        assert not line.fwb
        # Third scan must not force anything: the line went back to IDLE.
        before = machine.stats.fwb_writebacks
        machine.fwb.scan(3.0)
        assert machine.stats.fwb_writebacks == before

    def test_redirtied_line_restarts_protocol(self, machine):
        machine.hierarchy.store(0, 0x2000, b"1" * 8, 0.0)
        machine.fwb.scan(0.0)
        machine.fwb.scan(1.0)  # forced back, IDLE
        machine.hierarchy.store(0, 0x2000, b"2" * 8, 2.0)
        machine.fwb.scan(3.0)
        line = machine.hierarchy.l1s[0].lookup(0x2000)
        assert line.fwb and line.dirty


class TestScheduling:
    def test_maybe_scan_respects_interval(self, machine):
        interval = machine.fwb.interval
        machine.fwb.maybe_scan(interval / 2)
        assert machine.stats.fwb_scans == 0
        machine.fwb.maybe_scan(interval + 1)
        assert machine.stats.fwb_scans == 1

    def test_maybe_scan_catches_up(self, machine):
        machine.fwb.maybe_scan(machine.fwb.interval * 3.5)
        assert machine.stats.fwb_scans == 3

    def test_scan_deposits_tax_debt(self, machine):
        machine.hierarchy.store(0, 0x2000, b"D" * 8, 0.0)
        machine.fwb.scan(0.0)
        assert machine.hierarchy.scan_debt > 0
        assert machine.stats.fwb_lines_scanned >= 1
