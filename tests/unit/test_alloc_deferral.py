"""Tests for transaction-deferred, thread-local allocation recycling.

A block freed inside a transaction must not be reusable by another
thread before the freeing transaction commits — otherwise the reuser's
log records race with the freer's undo records and recovery can roll a
committed write back.  (This policy exists because the race was actually
observed; see EXPERIMENTS.md.)
"""

from repro import Policy
from tests.conftest import make_pm


class TestDeferredFree:
    def test_free_inside_txn_not_reusable_until_commit(self):
        pm = make_pm(Policy.FWB)
        api = pm.api(0)
        addr = api.alloc(32)
        api.tx_begin()
        api.free(addr, 32)
        # Still quarantined: a new allocation must not reuse it.
        other = api.alloc(32)
        assert other != addr
        api.tx_commit()
        # Released at commit: now it recycles.
        assert api.alloc(32) == addr

    def test_free_outside_txn_recycles_immediately(self):
        pm = make_pm(Policy.FWB)
        api = pm.api(0)
        addr = api.alloc(32)
        api.free(addr, 32)
        assert api.alloc(32) == addr

    def test_recycling_is_thread_local(self):
        pm = make_pm(Policy.FWB)
        api0 = pm.api(0, 0)
        api1 = pm.api(1, 1)
        addr = api0.alloc(32)
        api0.free(addr, 32)
        # The other thread must not see thread 0's recycled block.
        assert api1.alloc(32) != addr
        assert api0.alloc(32) == addr

    def test_sizes_are_classed(self):
        pm = make_pm(Policy.FWB)
        api = pm.api(0)
        addr = api.alloc(32)
        api.free(addr, 32)
        assert api.alloc(64) != addr

    def test_alignment_matches_heap(self):
        pm = make_pm(Policy.FWB)
        api = pm.api(0)
        small = api.alloc(3)
        api.free(small, 3)
        # 3 bytes aligns up to 8: an 8-byte alloc reuses it.
        assert api.alloc(8) == small

    def test_multiple_frees_accumulate(self):
        pm = make_pm(Policy.FWB)
        api = pm.api(0)
        addrs = [api.alloc(16) for _ in range(3)]
        api.tx_begin()
        for addr in addrs:
            api.free(addr, 16)
        api.tx_commit()
        reused = {api.alloc(16) for _ in range(3)}
        assert reused == set(addrs)
