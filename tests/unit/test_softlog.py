"""Unit tests for repro.core.softlog."""

import pytest

from repro.core.logrecord import LogRecord, RecordKind
from repro.core.nvlog import CircularLog
from repro.core.registers import SpecialRegisters
from repro.core.softlog import SoftwareLog
from repro.errors import TransactionError


@pytest.fixture
def undo_log():
    log = CircularLog(base=0x1000, num_entries=16, entry_size=64)
    return SoftwareLog(log, SpecialRegisters(), record_undo=True, record_redo=False)


@pytest.fixture
def redo_log():
    log = CircularLog(base=0x1000, num_entries=16, entry_size=64)
    return SoftwareLog(log, SpecialRegisters(), record_undo=False, record_redo=True)


class TestLifecycle:
    def test_begin_places_header(self, undo_log):
        placed = undo_log.begin(1, 0)
        record = LogRecord.decode(placed.payload)
        assert record.kind == RecordKind.BEGIN

    def test_commit_places_and_releases(self, undo_log):
        undo_log.begin(1, 0)
        placed = undo_log.commit(1, 0)
        assert LogRecord.decode(placed.payload).kind == RecordKind.COMMIT
        # The physical id is reusable now.
        undo_log.begin(1, 0)

    def test_data_without_begin_rejected(self, undo_log):
        with pytest.raises(TransactionError):
            undo_log.data(1, 0, 0x100, b"A" * 8, b"B" * 8)

    def test_sides(self, undo_log, redo_log):
        assert undo_log.records_undo and not undo_log.records_redo
        assert redo_log.records_redo and not redo_log.records_undo


class TestRecordSides:
    def test_undo_log_drops_redo_value(self, undo_log):
        undo_log.begin(1, 0)
        placed = undo_log.data(1, 0, 0x100, b"O" * 8, b"N" * 8)
        record = LogRecord.decode(placed.payload)
        assert record.undo == b"O" * 8
        assert not record.has_redo

    def test_redo_log_drops_undo_value(self, redo_log):
        redo_log.begin(1, 0)
        placed = redo_log.data(1, 0, 0x100, b"O" * 8, b"N" * 8)
        record = LogRecord.decode(placed.payload)
        assert record.redo == b"N" * 8
        assert not record.has_undo

    def test_placements_sequential(self, undo_log):
        undo_log.begin(1, 0)
        first = undo_log.data(1, 0, 0x100, b"O" * 8, b"N" * 8)
        second = undo_log.data(1, 0, 0x108, b"O" * 8, b"N" * 8)
        assert second.addr == first.addr + 64

    def test_physical_txid_stamped(self, undo_log):
        undo_log.begin(77, 0)
        placed = undo_log.data(77, 0, 0x100, b"O" * 8, b"N" * 8)
        record = LogRecord.decode(placed.payload)
        assert record.txid < 256
