"""Figure 8: dynamic memory energy reduction, normalized to unsafe-base.

Paper shape: the software clwb designs impose up to ~62% extra memory
energy versus non-pers; fwb's forced-write-back-free execution keeps its
energy at or below every persistence-guaranteeing software design.
"""

from repro.core.policy import Policy
from repro.harness.experiments import figure8_energy

from .conftest import get_micro_sweep


def test_bench_fig8_energy(benchmark):
    sweep = get_micro_sweep()
    result = benchmark.pedantic(lambda: figure8_energy(sweep), rounds=1, iterations=1)
    print()
    print(result.rendered)
    for (bench, threads), cell in result.data.items():
        # Reduction is "higher is better": fwb at least matches the
        # software clwb designs everywhere.
        assert cell[Policy.FWB] >= cell[Policy.REDO_CLWB], (bench, threads)
        assert cell[Policy.FWB] >= cell[Policy.UNDO_CLWB], (bench, threads)
        benchmark.extra_info[f"{bench}-{threads}t_fwb_vs_undo_clwb"] = round(
            cell[Policy.FWB] / cell[Policy.UNDO_CLWB], 3
        )
