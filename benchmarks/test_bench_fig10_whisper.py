"""Figure 10: WHISPER results, normalized to unsafe-base.

All four reported metrics (IPC, dynamic memory energy, transaction
throughput, NVRAM write traffic) for the eight WHISPER-like kernels.
Paper shape: fwb reaches up to ~2.7x the throughput of the better
software design, stays within reach of non-pers, and the write-intensive
kernels (tpcc, ycsb) gain the most memory energy.
"""

from repro.core.policy import Policy
from repro.harness.experiments import figure10_whisper


def test_bench_fig10_whisper(benchmark):
    result = benchmark.pedantic(
        lambda: figure10_whisper(txns_per_thread=150), rounds=1, iterations=1
    )
    print()
    print(result.rendered)

    kernels = sorted({kernel for kernel, _ in result.data})
    gains = {}
    for kernel in kernels:
        fwb = result.data[(kernel, Policy.FWB)]
        best_sw_throughput = max(
            result.data[(kernel, Policy.REDO_CLWB)]["throughput"],
            result.data[(kernel, Policy.UNDO_CLWB)]["throughput"],
        )
        gains[kernel] = fwb["throughput"] / best_sw_throughput
        assert fwb["throughput"] > best_sw_throughput, kernel
        assert fwb["memory_energy"] >= result.data[(kernel, Policy.UNDO_CLWB)][
            "memory_energy"
        ], kernel
    top = max(gains, key=gains.get)
    print(f"largest fwb throughput gain over best software-clwb: "
          f"{gains[top]:.2f}x on {top} (paper: up to 2.7x)")
    for kernel, gain in sorted(gains.items()):
        benchmark.extra_info[f"fwb_gain_{kernel}"] = round(gain, 3)
