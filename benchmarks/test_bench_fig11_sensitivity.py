"""Figure 11: sensitivity studies.

(a) hash throughput across log-buffer sizes {0..256}; 128/256 run with
    infinite NVRAM write bandwidth, as the paper footnotes.  Paper shape:
    ~+10% at 8 entries, ~+18% at the 15-entry persistence bound, further
    gains only beyond the bandwidth limit.
(b) required FWB scan frequency versus log size: inverse-linear, with the
    paper's running example (64K-entry / 4 MB log -> ~3M-cycle period).
"""

import pytest

from repro.harness.experiments import figure11a_log_buffer, figure11b_fwb_frequency


def test_bench_fig11a_log_buffer(benchmark):
    result = benchmark.pedantic(
        lambda: figure11a_log_buffer(txns_per_thread=300), rounds=1, iterations=1
    )
    print()
    print(result.rendered)
    data = result.data
    # Buffering beats no buffer within the persistence bound.
    assert data[8] > 1.02
    assert data[15] >= data[8] * 0.97
    # Infinite-bandwidth points dominate everything bandwidth-limited.
    assert data[128] > data[64]
    assert data[256] == pytest.approx(data[128], rel=0.05)
    for size, ratio in data.items():
        benchmark.extra_info[f"speedup_{size}_entries"] = round(ratio, 3)


def test_bench_fig11b_fwb_frequency(benchmark):
    result = benchmark.pedantic(figure11b_fwb_frequency, rounds=1, iterations=1)
    print()
    print(result.rendered)
    data = result.data
    sizes = sorted(data)
    # Inverse-linear: doubling the log halves the required frequency.
    for small, large in zip(sizes, sizes[1:]):
        assert data[small] == pytest.approx(data[large] * (large / small), rel=0.01)
    # The paper's running example: 64K entries -> ~3M-cycle scan period.
    period = 1.0 / data[65536]
    assert 2e6 < period < 4e6
    benchmark.extra_info["scan_period_64k_log"] = round(period)
