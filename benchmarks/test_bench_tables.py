"""Tables I-III: hardware overhead, machine configuration, workloads.

Table I is a *computed* reproduction: the register/SRAM sizes fall out of
the Table II configuration (e.g. the 15-entry x 64 B log buffer = 960 B,
against the paper's 964 B which includes its pointer overhead).
"""

from repro import SystemConfig
from repro.harness.experiments import (
    table1_hardware_overhead,
    table2_configuration,
    table3_microbenchmarks,
)


def test_bench_table1_overhead(benchmark):
    result = benchmark.pedantic(
        lambda: table1_hardware_overhead(SystemConfig()), rounds=1, iterations=1
    )
    print()
    print(result.rendered)
    assert result.data["Transaction ID register"] == 1
    assert result.data["Log head pointer register"] == 8
    assert result.data["Log tail pointer register"] == 8
    assert abs(result.data["Log buffer (optional)"] - 964) <= 8
    for name, size in result.data.items():
        benchmark.extra_info[name] = size


def test_bench_table2_configuration(benchmark):
    result = benchmark.pedantic(table2_configuration, rounds=1, iterations=1)
    print()
    print(result.rendered)
    text = result.rendered
    for fragment in ("2.5 GHz", "32 KB", "8 MB", "64-/64-entry", "8 banks"):
        assert fragment in text


def test_bench_table3_microbenchmarks(benchmark):
    result = benchmark.pedantic(table3_microbenchmarks, rounds=1, iterations=1)
    print()
    print(result.rendered)
    assert [row[0] for row in result.rows] == [
        "hash",
        "rbtree",
        "sps",
        "btree",
        "ssca2",
    ]
