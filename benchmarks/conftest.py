"""Shared state for the figure-reproduction benchmarks.

Figures 6-9 read off one microbenchmark sweep; it is executed once per
session (inside the Figure 6 benchmark, which times it) and shared with
the other figures through :func:`micro_sweep`.

Sizes here are the reproduction defaults: every workload at its
paper-regime footprint, 1/2/4/8 threads (the paper's series), a few hundred transactions per
thread.  They are deliberately larger than the unit-test configurations —
expect the full benchmark run to take a few minutes.
"""

from __future__ import annotations

import pytest

from repro.harness.sweep import SweepResult, run_micro_sweep

SWEEP_THREADS = (1, 2, 4, 8)
SWEEP_TXNS = 250

_cache: dict = {}


def get_micro_sweep() -> SweepResult:
    """Run (once) and return the shared Figure 6-9 sweep."""
    if "sweep" not in _cache:
        _cache["sweep"] = run_micro_sweep(
            threads=SWEEP_THREADS, txns_per_thread=SWEEP_TXNS
        )
    return _cache["sweep"]


@pytest.fixture(scope="session")
def micro_sweep() -> SweepResult:
    """Session-shared microbenchmark sweep."""
    return get_micro_sweep()
