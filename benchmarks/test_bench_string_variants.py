"""String-element variants of the microbenchmarks.

The paper's methodology: "Our experiments use multiple versions of each
benchmark and vary the data type between integers and strings ... Data
structures with integer elements pack less data (smaller than a cache
line) per element, whereas those with strings require multiple cache
lines per element."  String elements mean more logged words per
transaction, so the logging designs separate further — and the headline
shapes must continue to hold.
"""

from repro.core.policy import Policy
from repro.harness.experiments import figure6_throughput, summarize_fwb_gain
from repro.harness.sweep import run_micro_sweep

STRING_BENCHMARKS = ("hash", "sps", "rbtree")


def test_bench_string_variants(benchmark):
    def sweep_pair():
        string_sweep = run_micro_sweep(
            benchmarks=STRING_BENCHMARKS,
            threads=(1,),
            txns_per_thread=200,
            value_kind="string",
        )
        int_sweep = run_micro_sweep(
            benchmarks=STRING_BENCHMARKS,
            threads=(1,),
            txns_per_thread=200,
            value_kind="int",
        )
        return string_sweep, int_sweep

    string_sweep, int_sweep = benchmark.pedantic(sweep_pair, rounds=1, iterations=1)
    print()
    result = figure6_throughput(string_sweep)
    print(result.rendered.replace("Figure 6", "Figure 6 (string elements)"))

    # Shape checks hold for string elements too.
    for (bench, threads), cell in result.data.items():
        assert cell[Policy.FWB] > max(
            cell[Policy.REDO_CLWB], cell[Policy.UNDO_CLWB]
        ), (bench, threads)
    gain = summarize_fwb_gain(string_sweep, 1)
    print(f"fwb gain over best software-clwb (string elements): {gain:.2f}x")
    assert gain > 1.2
    benchmark.extra_info["fwb_gain_string"] = round(gain, 3)

    # Strings log more words per transaction than ints (multi-line
    # elements), for every benchmark.
    for bench in STRING_BENCHMARKS:
        string_stats = string_sweep.stats(bench, 1, Policy.FWB)
        int_stats = int_sweep.stats(bench, 1, Policy.FWB)
        string_rate = string_stats.log_records / string_stats.transactions_committed
        int_rate = int_stats.log_records / int_stats.transactions_committed
        print(f"{bench}: {int_rate:.1f} records/txn (int) vs "
              f"{string_rate:.1f} (string)")
        # Trees are dominated by structural pointer writes, so their
        # element-size sensitivity is the smallest.
        assert string_rate > 1.2 * int_rate, bench
