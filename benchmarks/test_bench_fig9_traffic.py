"""Figure 9: NVRAM write-traffic reduction, normalized to unsafe-base.

Paper shape: the design substantially reduces NVRAM writes against the
forced-write-back software designs — caches keep coalescing writes
(Section III-F: "we improve NVRAM lifetime because our caches coalesce
writes").
"""

from repro.core.policy import Policy
from repro.harness.experiments import figure9_write_traffic

from .conftest import get_micro_sweep


def test_bench_fig9_write_traffic(benchmark):
    sweep = get_micro_sweep()
    result = benchmark.pedantic(
        lambda: figure9_write_traffic(sweep), rounds=1, iterations=1
    )
    print()
    print(result.rendered)
    reductions = []
    for (bench, threads), cell in result.data.items():
        ratio = cell[Policy.FWB] / cell[Policy.UNDO_CLWB]
        reductions.append(ratio)
        assert cell[Policy.FWB] >= cell[Policy.UNDO_CLWB], (bench, threads)
        assert cell[Policy.FWB] >= cell[Policy.REDO_CLWB], (bench, threads)
    print(f"fwb writes less than undo-clwb by {min(reductions):.2f}x - "
          f"{max(reductions):.2f}x across the sweep")
    benchmark.extra_info["min_write_reduction_vs_undo_clwb"] = round(min(reductions), 3)
    benchmark.extra_info["max_write_reduction_vs_undo_clwb"] = round(max(reductions), 3)
