"""Figure 6: transaction throughput speedup, normalized to unsafe-base.

Regenerates the paper's Figure 6 series: five microbenchmarks at 1 and 8
threads under all eight designs.  Shape targets (paper): fwb gains
~1.86x/1.75x (1t/8t) over the better software-clwb design; software
logging loses up to ~59% against non-pers; SSCA2 shows the smallest gain.
"""

from repro.core.policy import Policy
from repro.harness.experiments import figure6_throughput, summarize_fwb_gain

from .conftest import SWEEP_THREADS, get_micro_sweep


def test_bench_fig6_throughput(benchmark):
    sweep = benchmark.pedantic(get_micro_sweep, rounds=1, iterations=1)
    result = figure6_throughput(sweep)
    print()
    print(result.rendered)
    for threads in SWEEP_THREADS:
        gain = summarize_fwb_gain(sweep, threads)
        print(f"fwb gain over best software-clwb at {threads} thread(s): {gain:.2f}x "
              f"(paper: {'1.86x' if threads == 1 else '1.75x'})")
        benchmark.extra_info[f"fwb_gain_{threads}t"] = round(gain, 3)

    # Shape assertions (who wins, roughly by how much).
    for (bench, threads), cell in result.data.items():
        assert cell[Policy.NON_PERS] >= cell[Policy.FWB] * 0.95, (bench, threads)
        assert cell[Policy.FWB] > max(
            cell[Policy.REDO_CLWB], cell[Policy.UNDO_CLWB]
        ), (bench, threads)
        assert cell[Policy.HWL] > min(
            cell[Policy.REDO_CLWB], cell[Policy.UNDO_CLWB]
        ), (bench, threads)
    assert 1.2 < summarize_fwb_gain(sweep, 1) < 3.0
