"""Ablation studies for the design choices DESIGN.md calls out.

Not figures from the paper, but quantifications of its design arguments:

* **FWB scan interval** (Section IV-D): scanning more often than the
  log-wrap bound requires only adds tag-scan and write-back overhead;
  scanning less often leans on the wrap-protection stalls.
* **Centralized vs distributed logs** (Section III-F): per-thread rings
  remove contention on the single tail / log buffer at high thread
  counts.
* **log_grow()** (Section IV-A): enabling growth costs nothing while it
  does not trigger, and absorbs transactions larger than the log when it
  does.
"""

from dataclasses import replace

from repro import Machine, PersistentMemory
from repro.core.fwb import required_scan_interval
from repro.core.policy import Policy
from repro.harness.report import format_table
from repro.harness.runner import (
    RunConfig,
    default_experiment_config,
    prepare_workload,
    run_workload,
)
from repro.workloads.hashtable import HashTableWorkload


def test_bench_ablation_fwb_interval(benchmark):
    # A small (1K-entry) log makes the wrap-vs-scan trade-off visible
    # within a short run: the nominal interval is the Section IV-D bound.
    base = default_experiment_config()
    base = base.scaled(logging=replace(base.logging, log_entries=1024))
    nominal = required_scan_interval(base)
    workload = HashTableWorkload(seed=3)
    prepared = prepare_workload(workload, base)

    def sweep():
        rows = {}
        for factor in (0.125, 1.0, 16.0):
            cfg = base.scaled(
                logging=replace(
                    base.logging,
                    log_entries=1024,
                    fwb_scan_interval_override=int(nominal * factor),
                )
            )
            stats = run_workload(
                workload,
                RunConfig(policy=Policy.FWB, threads=1, txns_per_thread=400, system=cfg),
                prepared=prepared,
            ).stats
            rows[factor] = stats
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print()
    print(
        format_table(
            "Ablation: FWB scan interval (hash, fwb design, 1K-entry log)",
            ["interval", "throughput", "scans", "fwb write-backs", "wrap forces"],
            [
                [
                    f"{factor}x nominal",
                    stats.throughput,
                    stats.fwb_scans,
                    stats.fwb_writebacks,
                    stats.log_wrap_forced_writebacks,
                ]
                for factor, stats in rows.items()
            ],
        )
    )
    # Over-frequent scanning does more scan work for no gain; a too-lazy
    # interval leans on the wrap-protection safety net instead.
    assert rows[0.125].fwb_scans > rows[1.0].fwb_scans > rows[16.0].fwb_scans
    assert rows[0.125].fwb_writebacks >= rows[1.0].fwb_writebacks
    assert (
        rows[16.0].log_wrap_forced_writebacks
        >= rows[1.0].log_wrap_forced_writebacks
    )
    overhead = 1 - rows[0.125].throughput / rows[1.0].throughput
    print(f"8x-too-frequent scanning costs {overhead * 100:.1f}% throughput "
          "(the paper tunes for ~3.6% at its 8 MB LLC / 3M-cycle point)")
    benchmark.extra_info["overfrequent_scan_overhead"] = round(overhead, 4)


def test_bench_ablation_distributed_log(benchmark):
    base = default_experiment_config()
    workload = HashTableWorkload(seed=3)
    prepared = prepare_workload(workload, base)

    def sweep():
        results = {}
        for rings in (0, 8):
            cfg = base.scaled(
                logging=replace(base.logging, distributed_logs=rings)
            )
            results[rings] = run_workload(
                workload,
                RunConfig(policy=Policy.FWB, threads=8, txns_per_thread=150, system=cfg),
                prepared=prepared,
            ).stats
        return results

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print()
    print(
        format_table(
            "Ablation: centralized vs per-thread logs (hash, 8 threads, fwb)",
            ["log layout", "throughput", "log-buffer stalls", "log records"],
            [
                [
                    "centralized" if rings == 0 else f"{rings} per-thread rings",
                    stats.throughput,
                    stats.log_buffer_stall_cycles,
                    stats.log_records,
                ]
                for rings, stats in results.items()
            ],
        )
    )
    ratio = results[8].throughput / results[0].throughput
    print(f"distributed/centralized throughput: {ratio:.2f}x")
    print("The hardware tail has no software lock contention in this model, "
          "so per-thread rings mainly cut log-buffer stalls (visible above) "
          "at a small row-locality cost; Section III-F's scalability case is "
          "software-side.")
    assert results[8].log_buffer_stall_cycles <= results[0].log_buffer_stall_cycles
    assert ratio > 0.85  # never substantially worse in hardware terms
    benchmark.extra_info["distributed_speedup"] = round(ratio, 3)


def test_bench_ablation_adr_persist_domain(benchmark):
    """What if the machine had an ADR persist domain?

    The paper's model (2018, pre-pervasive-ADR) makes a write durable
    only at the NVRAM array, which is what makes clwb+fence expensive.
    With an ADR domain (durable at controller acceptance) the software
    designs' fences get much cheaper — fwb's advantage narrows but does
    not vanish: the instruction-stream and write-traffic savings remain.
    """
    base = default_experiment_config()
    workload = HashTableWorkload(seed=3)

    def sweep():
        results = {}
        for adr in (False, True):
            cfg = base.scaled(nvram=replace(base.nvram, adr_persist_domain=adr))
            prepared = prepare_workload(workload, cfg)
            stats = {}
            for policy in (Policy.UNDO_CLWB, Policy.REDO_CLWB, Policy.FWB):
                stats[policy] = run_workload(
                    workload,
                    RunConfig(
                        policy=policy, threads=1, txns_per_thread=300, system=cfg
                    ),
                    prepared=prepared,
                ).stats
            results[adr] = stats
        return results

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print()
    rows = []
    gains = {}
    for adr, stats in results.items():
        best_sw = max(
            stats[Policy.REDO_CLWB].throughput, stats[Policy.UNDO_CLWB].throughput
        )
        gains[adr] = stats[Policy.FWB].throughput / best_sw
        rows.append(
            [
                "ADR" if adr else "no ADR (paper model)",
                stats[Policy.FWB].throughput,
                best_sw,
                gains[adr],
                stats[Policy.UNDO_CLWB].fence_stall_cycles,
            ]
        )
    print(
        format_table(
            "Ablation: persist domain (hash, 1 thread)",
            ["persist domain", "fwb thpt", "best sw-clwb thpt", "fwb gain", "sw fence stalls"],
            rows,
        )
    )
    assert gains[False] > gains[True] > 1.0
    print(f"fwb gain: {gains[False]:.2f}x without ADR vs {gains[True]:.2f}x with — "
          "hardware logging still wins on instructions and traffic alone")
    benchmark.extra_info["gain_no_adr"] = round(gains[False], 3)
    benchmark.extra_info["gain_adr"] = round(gains[True], 3)


def test_bench_ablation_log_grow(benchmark):
    base = default_experiment_config()

    def run_grow():
        cfg = base.scaled(
            logging=replace(base.logging, log_entries=256, enable_log_grow=True)
        )
        machine = Machine(cfg, Policy.FWB)
        pm = PersistentMemory(machine)
        api = pm.api(0)
        slots = [pm.heap.alloc(8) for _ in range(600)]
        api.tx_begin()  # one transaction bigger than the whole log
        for i, addr in enumerate(slots):
            api.write(addr, (i + 1).to_bytes(8, "little"))
        api.tx_commit()
        return machine

    machine = benchmark.pedantic(run_grow, rounds=1, iterations=1)
    print()
    print(f"single 600-write transaction over a 256-entry log: "
          f"grew {machine.log.grow_count} time(s), "
          f"{machine.log.total_regions} regions, "
          f"{machine.stats.log_records} records")
    assert machine.log.grow_count >= 1
    assert machine.stats.transactions_committed == 1
    benchmark.extra_info["grow_count"] = machine.log.grow_count
