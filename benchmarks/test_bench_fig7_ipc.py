"""Figure 7: IPC speedup and instruction count, normalized to unsafe-base.

Paper shape: software logging executes up to ~2.5x the instructions of
non-pers (undo more than redo); fwb stays within ~1.3x; hardware logging
IPC beats software logging.
"""

from repro.core.policy import Policy
from repro.harness.experiments import figure7_ipc_instructions

from .conftest import get_micro_sweep


def test_bench_fig7_ipc_instructions(benchmark):
    sweep = get_micro_sweep()
    result = benchmark.pedantic(
        lambda: figure7_ipc_instructions(sweep), rounds=1, iterations=1
    )
    print()
    print(result.rendered)

    instr = result.data["instructions"]
    worst_sw = 0.0
    worst_fwb = 0.0
    fwb_ratios = []
    for (bench, threads), cell in instr.items():
        non_pers = cell[Policy.NON_PERS]
        sw_ratio = cell[Policy.UNDO_CLWB] / non_pers
        fwb_ratio = cell[Policy.FWB] / non_pers
        worst_sw = max(worst_sw, sw_ratio)
        worst_fwb = max(worst_fwb, fwb_ratio)
        fwb_ratios.append(fwb_ratio)
        # Software logging substantially expands the instruction stream
        # everywhere; compute-heavy ssca2 dilutes it the most (which is
        # exactly why the paper's SSCA2 gains the least).
        assert sw_ratio > 1.5, (bench, threads, sw_ratio)
        # Hardware logging adds only transaction-interface instructions
        # (sps's tiny transactions make that overhead proportionally
        # largest, up to ~1.6x; the mean stays near the paper's 1.3x).
        assert fwb_ratio < 1.7, (bench, threads, fwb_ratio)
    assert sum(fwb_ratios) / len(fwb_ratios) < 1.5
    assert worst_sw > 2.0  # the "up to 2.5x" benchmarks are present
    print(f"max software-logging instruction expansion vs non-pers: "
          f"{worst_sw:.2f}x (paper: up to 2.5x)")
    print(f"max fwb instruction expansion vs non-pers: {worst_fwb:.2f}x "
          f"(paper: ~1.3x)")
    benchmark.extra_info["max_sw_instr_expansion"] = round(worst_sw, 3)
    benchmark.extra_info["max_fwb_instr_expansion"] = round(worst_fwb, 3)
